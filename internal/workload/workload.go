// Package workload generates the deterministic synthetic benchmark suite
// that stands in for SPEC CPU2000 in the paper's evaluation (§4.2).
//
// Each of the 15 profiles mirrors one SPEC C benchmark in spirit: the
// generator controls exactly the program characteristics that drive the
// paper's results — the fraction of allocations left uninitialized
// (Table 1's %F), the mix of strong/weak-update stores (%SU/%WU), the
// density of values reaching critical operations (%B), arithmetic chain
// lengths (Opt I's MFCs), repeated checks on the same values (Opt II's
// targets), function-pointer dispatch (the O0+IM inlining step) and
// allocation wrappers (heap cloning).
//
// Two structural decisions matter for fidelity to the paper's numbers:
//
//   - Configuration (loop bounds, scales) flows through global variables
//     set in main. A top-level-only analysis (Usher_TL) sees every load
//     as possibly undefined, so even loop conditions stay instrumented —
//     reproducing the paper's small Usher_TL win; the address-taken
//     analysis (Usher_TL+AT) proves the globals defined and reclaims it.
//   - Each group has a personality: "provable" groups initialize memory
//     in ways the analysis can discharge (calloc, strong and semi-strong
//     updates), while "opaque" groups use malloc'd buffers filled through
//     shared helpers (weak updates over collapsed objects) whose contents
//     the analysis can never prove defined, leaving residual
//     instrumentation in the hot loops, as real SPEC code does.
//
// Apart from the deliberately planted bug in the "parser" profile
// (mirroring the real uninitialized read the paper found in 197.parser's
// ppmatch()), every generated program is clean at run time: all values
// consumed by critical operations are defined on executed paths, even
// where the static analysis cannot prove it. Generation is fully
// deterministic per profile.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	// Name is the benchmark's identity, matching the paper's Table 1 rows.
	Name string
	// Spec is the SPEC CPU2000 benchmark this profile stands in for.
	Spec string
	Seed int64
	// Groups is the number of object-type groups (struct + allocator +
	// kernels); the main driver of program size.
	Groups int
	// StructFields is the field count of each group's struct.
	StructFields int
	// BufSize is the element count of each group's heap buffer.
	BufSize int
	// ChainLen is the length of pure arithmetic chains (MFC material for
	// Opt I).
	ChainLen int
	// OpaqueFrac is the probability a group gets the opaque personality:
	// malloc'd buffers and shared-helper initialization that the analysis
	// cannot prove defined. It is the main driver of residual
	// instrumentation (and of Table 1's %F).
	OpaqueFrac float64
	// CondInitFrac is the probability a kernel uses the correlated
	// conditional-initialization pattern (statically ⊥, dynamically
	// clean).
	CondInitFrac float64
	// RedundantChecks adds this many extra sequential critical uses of
	// the same value (Opt II targets).
	RedundantChecks int
	// FuncPtrEvery dispatches every n-th group through function pointers
	// (exercising the O0+IM inlining step). 0 disables.
	FuncPtrEvery int
	// SinkChains emits this many write-only computation chains per group
	// (values that never reach a critical operation; Table 1's %B).
	SinkChains int
	// TreeRec adds a recursive tree build/sum/free kernel (gcc's and
	// parser's recursive-descent character), exercising the analysis on
	// recursive functions (no semi-strong on other activations' cells,
	// recursive stack objects as virtual parameters).
	TreeRec bool
	// Iters is the reference-input scale: per-group driver iterations.
	Iters int
	// PlantBug plants one genuine use of an undefined value.
	PlantBug bool
}

// Profiles are the 15 benchmarks, ordered as in Table 1.
var Profiles = []Profile{
	{Name: "gzip", Spec: "164.gzip", Seed: 164, Groups: 6, StructFields: 3, BufSize: 24, ChainLen: 6, OpaqueFrac: 0.35, CondInitFrac: 0.2, RedundantChecks: 2, FuncPtrEvery: 0, SinkChains: 2, Iters: 300},
	{Name: "vpr", Spec: "175.vpr", Seed: 175, Groups: 9, StructFields: 4, BufSize: 16, ChainLen: 5, OpaqueFrac: 0.45, CondInitFrac: 0.3, RedundantChecks: 1, FuncPtrEvery: 4, SinkChains: 2, Iters: 180},
	{Name: "gcc", Spec: "176.gcc", Seed: 176, Groups: 22, StructFields: 6, BufSize: 12, ChainLen: 4, OpaqueFrac: 0.50, CondInitFrac: 0.4, RedundantChecks: 1, FuncPtrEvery: 3, SinkChains: 1, TreeRec: true, Iters: 60},
	{Name: "mesa", Spec: "177.mesa", Seed: 177, Groups: 14, StructFields: 5, BufSize: 20, ChainLen: 7, OpaqueFrac: 0.35, CondInitFrac: 0.2, RedundantChecks: 2, FuncPtrEvery: 5, SinkChains: 2, Iters: 100},
	{Name: "art", Spec: "179.art", Seed: 179, Groups: 4, StructFields: 3, BufSize: 40, ChainLen: 8, OpaqueFrac: 0.25, CondInitFrac: 0.1, RedundantChecks: 3, FuncPtrEvery: 0, SinkChains: 3, Iters: 500},
	{Name: "mcf", Spec: "181.mcf", Seed: 181, Groups: 4, StructFields: 5, BufSize: 24, ChainLen: 5, OpaqueFrac: 0.20, CondInitFrac: 0.1, RedundantChecks: 4, FuncPtrEvery: 0, SinkChains: 3, Iters: 450},
	{Name: "equake", Spec: "183.equake", Seed: 183, Groups: 5, StructFields: 4, BufSize: 32, ChainLen: 7, OpaqueFrac: 0.30, CondInitFrac: 0.2, RedundantChecks: 2, FuncPtrEvery: 0, SinkChains: 2, Iters: 350},
	{Name: "crafty", Spec: "186.crafty", Seed: 186, Groups: 10, StructFields: 4, BufSize: 18, ChainLen: 6, OpaqueFrac: 0.40, CondInitFrac: 0.3, RedundantChecks: 2, FuncPtrEvery: 0, SinkChains: 2, TreeRec: true, Iters: 150},
	{Name: "ammp", Spec: "188.ammp", Seed: 188, Groups: 8, StructFields: 6, BufSize: 20, ChainLen: 6, OpaqueFrac: 0.45, CondInitFrac: 0.3, RedundantChecks: 1, FuncPtrEvery: 0, SinkChains: 1, Iters: 200},
	{Name: "parser", Spec: "197.parser", Seed: 197, Groups: 10, StructFields: 4, BufSize: 16, ChainLen: 5, OpaqueFrac: 0.45, CondInitFrac: 0.4, RedundantChecks: 1, FuncPtrEvery: 0, SinkChains: 1, TreeRec: true, Iters: 160, PlantBug: true},
	{Name: "perlbmk", Spec: "253.perlbmk", Seed: 253, Groups: 18, StructFields: 6, BufSize: 14, ChainLen: 4, OpaqueFrac: 0.60, CondInitFrac: 0.5, RedundantChecks: 0, FuncPtrEvery: 2, SinkChains: 0, Iters: 70},
	{Name: "gap", Spec: "254.gap", Seed: 254, Groups: 16, StructFields: 5, BufSize: 16, ChainLen: 4, OpaqueFrac: 0.60, CondInitFrac: 0.5, RedundantChecks: 0, FuncPtrEvery: 4, SinkChains: 0, Iters: 80},
	{Name: "vortex", Spec: "255.vortex", Seed: 255, Groups: 20, StructFields: 5, BufSize: 12, ChainLen: 5, OpaqueFrac: 0.45, CondInitFrac: 0.4, RedundantChecks: 1, FuncPtrEvery: 4, SinkChains: 1, Iters: 70},
	{Name: "bzip2", Spec: "256.bzip2", Seed: 256, Groups: 5, StructFields: 3, BufSize: 30, ChainLen: 7, OpaqueFrac: 0.30, CondInitFrac: 0.2, RedundantChecks: 3, FuncPtrEvery: 0, SinkChains: 2, Iters: 380},
	{Name: "twolf", Spec: "300.twolf", Seed: 300, Groups: 11, StructFields: 5, BufSize: 18, ChainLen: 6, OpaqueFrac: 0.40, CondInitFrac: 0.3, RedundantChecks: 2, FuncPtrEvery: 5, SinkChains: 2, Iters: 130},
}

// ByName returns the named profile.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles {
		if p.Name == name || p.Spec == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Generate produces the benchmark's MiniC source.
func Generate(p Profile) string {
	g := &gen{p: &p, rng: rand.New(rand.NewSource(p.Seed))}
	return g.program()
}

type gen struct {
	p      *Profile
	rng    *rand.Rand
	b      strings.Builder
	opaque []bool
}

func (g *gen) pf(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
}

// chance rolls a probability.
func (g *gen) chance(p float64) bool { return g.rng.Float64() < p }

// konst returns a small non-zero constant.
func (g *gen) konst() int { return 1 + g.rng.Intn(9) }

var chainOps = []string{"+", "-", "^", "|", "&"}

func (g *gen) program() string {
	p := g.p
	g.pf("// %s: synthetic stand-in for %s (seed %d), generated by internal/workload.\n", p.Name, p.Spec, p.Seed)
	g.pf("int checksum;\n")
	// Configuration globals: set once in main, loaded by the kernels.
	for i := 0; i < p.Groups; i++ {
		g.pf("int cfg_iters_%d;\n", i)
		g.pf("int cfg_buf_%d;\n", i)
		g.pf("int cfg_list_%d;\n", i)
		g.pf("int stat_%d;\n", i)
	}
	g.pf("\n")

	// Shared helpers: store through pointers that alias several groups'
	// memory, forcing weak updates.
	g.pf("void shared_fill(int *buf, int n, int salt) {\n")
	g.pf("  for (int i = 0; i < n; i++) { buf[i] = i * %d + salt; }\n", g.konst())
	g.pf("}\n")
	g.pf("void set_cell(int *p, int v) { *p = v; }\n")
	g.pf("void scale_into(int *out, int v) { *out = v * %d + %d; }\n", g.konst(), g.konst())
	// Variadic reducer: every call site packs a caller-side extras array,
	// so the callee's va_arg loads are loads from collapsed stack memory.
	g.pf("int vacc(int n, ...) {\n")
	g.pf("  int t = 0;\n")
	g.pf("  for (int i = 0; i < n; i++) { t += va_arg(i); }\n")
	g.pf("  return t;\n}\n\n")

	g.opaque = make([]bool, p.Groups)
	for i := 0; i < p.Groups; i++ {
		g.opaque[i] = g.chance(p.OpaqueFrac)
	}
	for i := 0; i < p.Groups; i++ {
		g.group(i)
	}
	if p.TreeRec {
		g.treeKernel()
	}
	if p.PlantBug {
		g.plantBug()
	}
	g.main()
	return g.b.String()
}

// group emits one object-type group: struct, allocation wrappers, chain,
// constructors and the kernel.
func (g *gen) group(i int) {
	p := g.p
	nf := p.StructFields
	opaque := g.opaque[i]

	g.pf("struct S%d {", i)
	for f := 0; f < nf; f++ {
		g.pf(" int f%d;", f)
	}
	g.pf(" struct S%d *next; };\n", i)
	// Pointer-valued globals: real programs keep their working pointers
	// in structures and globals, so most pointers used at critical
	// operations are loaded from memory. A top-level-only analysis can
	// prove none of them; the address-taken analysis recovers the ones
	// stored from defined values.
	g.pf("struct S%d *cur_%d;\n", i, i)
	g.pf("int *gbuf_%d;\n", i)
	// A small by-value struct and a name string: real benchmarks pass
	// and return aggregates by value and keep identifier tables of
	// NUL-terminated strings.
	g.pf("struct V%d { int a; int b; };\n", i)
	g.pf("struct V%d vmk_%d(int s) { struct V%d v; v.a = s; v.b = s * %d; return v; }\n", i, i, i, g.konst())
	g.pf("char name_%d[12] = \"grp%d\";\n\n", i, i)

	// Allocation wrappers: heap-cloning targets. Opaque groups allocate
	// uninitialized buffers and tables; list nodes are malloc'd in every
	// group (as in real code), so the pointer-chasing checks over `next`
	// links persist even where the scalar fields are provably
	// initialized.
	bufAlloc, sAlloc := "calloc", "malloc"
	if opaque {
		bufAlloc = "malloc"
	}
	g.pf("int *buf_alloc_%d(int n) { return %s(n); }\n", i, bufAlloc)
	g.pf("struct S%d *s_alloc_%d() { return %s(sizeof(struct S%d)); }\n", i, i, sAlloc, i)
	// Pointer table: an array of row pointers, the arrays-of-pointers
	// idiom of gcc/vortex. Rows reached through the table are loaded
	// pointers, so their dereferences keep runtime checks whenever the
	// table's cells cannot be proven initialized.
	g.pf("int **tab_alloc_%d(int n) { return %s(n); }\n\n", i, bufAlloc)

	// Pure arithmetic chain (an MFC for Opt I).
	g.pf("int chain_%d(int x) {\n", i)
	g.pf("  int a0 = x + %d;\n", g.konst())
	for c := 1; c < p.ChainLen; c++ {
		op := chainOps[g.rng.Intn(len(chainOps))]
		g.pf("  int a%d = a%d %s %d;\n", c, c-1, op, g.konst())
	}
	g.pf("  return a%d;\n}\n\n", p.ChainLen-1)

	// Struct constructor. Provable groups store fields directly (strong
	// or semi-strong updates after wrapper inlining); opaque groups go
	// through the shared helper, whose stores alias every group's cells.
	g.pf("struct S%d *mk_%d(int seed) {\n", i, i)
	g.pf("  struct S%d *s = s_alloc_%d();\n", i, i)
	for f := 0; f < nf; f++ {
		if opaque {
			g.pf("  set_cell(&s->f%d, chain_%d(seed + %d));\n", f, i, f)
		} else {
			g.pf("  s->f%d = chain_%d(seed + %d);\n", f, i, f)
		}
	}
	g.pf("  return s;\n}\n\n")

	// Field reducer.
	g.pf("int sum_%d(struct S%d *s) {\n", i, i)
	g.pf("  int t = 0;\n")
	for f := 0; f < nf; f++ {
		g.pf("  t += s->f%d;\n", f)
	}
	g.pf("  return t;\n}\n\n")

	// Linked-list plumbing. The link store happens in a different
	// function than the allocation, so no strong or semi-strong update
	// applies: for malloc'd nodes the next cells stay statically ⊥, and
	// every pointer loaded while walking keeps its checks — the
	// pointer-chasing behaviour of real SPEC code.
	g.pf("struct S%d *push_%d(struct S%d *head, struct S%d *node) {\n", i, i, i, i)
	g.pf("  node->next = head;\n")
	g.pf("  return node;\n}\n\n")
	g.pf("int walk_%d(struct S%d *head) {\n", i, i)
	g.pf("  int t = 0;\n")
	g.pf("  struct S%d *n = head;\n", i)
	g.pf("  while (n != 0) {\n")
	g.pf("    t += n->f%d;\n", g.rng.Intn(nf))
	g.pf("    n = n->next;\n")
	g.pf("  }\n")
	g.pf("  return t;\n}\n\n")
	g.pf("int max_%d(struct S%d *head) {\n", i, i)
	g.pf("  struct S%d *n = head;\n", i)
	g.pf("  int m = 0;\n")
	g.pf("  while (n != 0) {\n")
	g.pf("    if (n->f%d > m) { m = n->f%d; }\n", nf-1, nf-1)
	g.pf("    n = n->next;\n")
	g.pf("  }\n")
	g.pf("  return m;\n}\n\n")
	g.pf("struct S%d *find_%d(struct S%d *head, int key) {\n", i, i, i)
	g.pf("  struct S%d *n = head;\n", i)
	g.pf("  while (n != 0) {\n")
	g.pf("    if ((n->f0 & 7) == (key & 7)) { return n; }\n")
	g.pf("    n = n->next;\n")
	g.pf("  }\n")
	g.pf("  return head;\n}\n\n")

	// Optional function-pointer dispatch.
	if p.FuncPtrEvery > 0 && i%p.FuncPtrEvery == 0 {
		g.pf("int opa_%d(int x) { return x * %d + 1; }\n", i, g.konst())
		g.pf("int opb_%d(int x) { return x ^ %d; }\n", i, g.konst())
		g.pf("int dispatch_%d(int sel, int x) {\n", i)
		g.pf("  int (*f)(int);\n")
		g.pf("  if (sel & 1) { f = opa_%d; } else { f = opb_%d; }\n", i, i)
		g.pf("  return f(x);\n}\n\n")
	}

	// Kernel: allocate, fill, iterate, accumulate through critical ops.
	// The iteration bound comes from a global so that even loop
	// conditions need tracking under a top-level-only analysis.
	g.pf("int kernel_%d() {\n", i)
	g.pf("  int iters = cfg_iters_%d;\n", i)
	g.pf("  int bufn = cfg_buf_%d;\n", i)
	g.pf("  gbuf_%d = buf_alloc_%d(bufn);\n", i, i)
	g.pf("  int *buf = gbuf_%d;\n", i)
	if opaque {
		g.pf("  shared_fill(buf, bufn, %d);\n", g.konst())
	} else {
		g.pf("  for (int i = 0; i < bufn; i++) { buf[i] = chain_%d(i); }\n", i)
	}
	tabLen := 3 + g.rng.Intn(4)
	g.pf("  int **tab = tab_alloc_%d(%d);\n", i, tabLen)
	g.pf("  for (int k = 0; k < %d; k++) { tab[k] = buf + k; }\n", tabLen)
	g.pf("  int acc = 0;\n")
	g.pf("  int last = 0;\n")
	g.pf("  struct S%d *head = 0;\n", i)
	g.pf("  for (int k = 0; k < cfg_list_%d; k++) { head = push_%d(head, mk_%d(k)); }\n", i, i, i)
	g.pf("  for (int it = 0; it < iters; it++) {\n")
	g.pf("    acc += walk_%d(head) & 127;\n", i)
	g.pf("    acc += max_%d(head) & 63;\n", i)
	g.pf("    struct S%d *hit = find_%d(head, it);\n", i, i)
	g.pf("    if (hit != 0) { acc += hit->f0 & 31; }\n")
	g.pf("    cur_%d = mk_%d(it);\n", i, i)
	g.pf("    struct S%d *s = cur_%d;\n", i, i)
	g.pf("    int v = sum_%d(s) + buf[it %% %d];\n", i, p.BufSize)
	g.pf("    int *row = tab[it %% %d];\n", tabLen)
	g.pf("    v += row[it %% %d];\n", p.BufSize-tabLen)
	if p.FuncPtrEvery > 0 && i%p.FuncPtrEvery == 0 {
		g.pf("    v = dispatch_%d(it, v);\n", i)
	}
	// Out-parameter pattern: a strong update to a stack cell.
	g.pf("    int tmp;\n")
	g.pf("    scale_into(&tmp, v & 1023);\n")
	g.pf("    v = v + tmp;\n")
	// Intrinsic traffic: a partially memset tag buffer read only inside
	// the set range (statically ⊥ under the weak range chi, dynamically
	// clean), a string copied out of the group's name table, a struct
	// passed by value through a copy, and a variadic accumulation.
	g.pf("    char tagbuf[16];\n")
	g.pf("    memset(tagbuf, 65 + (it & 7), 8);\n")
	g.pf("    acc += tagbuf[it & 7];\n")
	g.pf("    char nmloc[12];\n")
	g.pf("    memcpy(nmloc, name_%d, 12);\n", i)
	g.pf("    acc += nmloc[it %% 12];\n")
	g.pf("    struct V%d vv = vmk_%d(it & 255);\n", i, i)
	g.pf("    struct V%d vw = vv;\n", i)
	g.pf("    acc += (vw.a + vw.b) & 63;\n")
	g.pf("    acc += vacc(3, v & 7, it & 7, acc & 7) & 255;\n")
	if g.chance(p.CondInitFrac) {
		// Correlated conditional initialization: statically ⊥,
		// dynamically always defined when read.
		g.pf("    int flag = it & 1;\n")
		g.pf("    int t;\n")
		g.pf("    if (flag) { t = v * %d; }\n", g.konst())
		g.pf("    int u = 0;\n")
		g.pf("    if (flag) { u = t + 1; }\n")
		g.pf("    acc += u;\n")
	}
	if g.chance(p.CondInitFrac) {
		// Loop-carried first-iteration guard: same character.
		g.pf("    if (it > 0) { acc += last & 15; }\n")
		g.pf("    last = v;\n")
	}
	g.pf("    if (v > %d) { acc += v; } else { acc -= 1; }\n", 8+g.rng.Intn(64))
	for r := 0; r < p.RedundantChecks; r++ {
		// Repeated critical uses of the same value: Opt II fodder.
		g.pf("    if (acc > %d) { acc = acc %% %d; }\n", 100000+r*7919, 65536+r)
	}
	g.pf("    acc += chain_%d(v & 255);\n", i)
	for sc := 0; sc < p.SinkChains; sc++ {
		// Write-only sink: computed, stored to a global, never branched
		// on — VFG nodes that reach no critical statement.
		g.pf("    stat_%d = stat_%d + (v ^ %d) * %d;\n", i, i, g.konst(), g.konst())
	}
	g.pf("    free(s);\n")
	g.pf("  }\n")
	g.pf("  while (head != 0) {\n")
	g.pf("    struct S%d *nx = head->next;\n", i)
	g.pf("    free(head);\n")
	g.pf("    head = nx;\n")
	g.pf("  }\n")
	g.pf("  free(tab);\n")
	g.pf("  free(buf);\n")
	g.pf("  return acc;\n}\n\n")
}

// treeKernel emits a recursive binary-tree build/sum/free kernel, the
// recursive-descent character of gcc, parser and crafty. Recursion
// exercises the analysis paths that differ from straight-line code: the
// allocator cannot be inlined (no heap cloning), recursive functions keep
// their own stack objects as virtual parameters, and the tree links are
// pointer loads chased at every level.
func (g *gen) treeKernel() {
	p := g.p
	g.pf("struct Tree { int val; struct Tree *l; struct Tree *r; };\n")
	g.pf("int cfg_tree_iters;\n\n")
	g.pf("struct Tree *tree_build(int depth, int seed) {\n")
	g.pf("  if (depth == 0) { return 0; }\n")
	g.pf("  struct Tree *n = malloc(sizeof(struct Tree));\n")
	g.pf("  n->val = seed * %d + depth;\n", g.konst())
	g.pf("  n->l = tree_build(depth - 1, seed * 2);\n")
	g.pf("  n->r = tree_build(depth - 1, seed * 2 + 1);\n")
	g.pf("  return n;\n}\n\n")
	g.pf("int tree_sum(struct Tree *n) {\n")
	g.pf("  if (n == 0) { return 0; }\n")
	g.pf("  return n->val + tree_sum(n->l) + tree_sum(n->r);\n}\n\n")
	g.pf("void tree_free(struct Tree *n) {\n")
	g.pf("  if (n == 0) { return; }\n")
	g.pf("  tree_free(n->l);\n")
	g.pf("  tree_free(n->r);\n")
	g.pf("  free(n);\n}\n\n")
	g.pf("int tree_kernel() {\n")
	g.pf("  struct Tree *root = tree_build(4, %d);\n", g.konst())
	g.pf("  int acc = 0;\n")
	g.pf("  for (int it = 0; it < cfg_tree_iters; it++) {\n")
	g.pf("    acc += tree_sum(root) & 1023;\n")
	g.pf("  }\n")
	g.pf("  tree_free(root);\n")
	g.pf("  return acc;\n}\n\n")
	_ = p
}

// plantBug emits the parser-profile bug: a function that leaves a local
// uninitialized on one path, with the result consumed by a branch, like
// the real bug the paper's tools found in 197.parser's ppmatch().
func (g *gen) plantBug() {
	g.pf("int ppmatch(int sel) {\n")
	g.pf("  int r;\n")
	g.pf("  if (sel > 2) { r = sel * 3; }\n")
	g.pf("  return r;\n}\n\n")
	g.pf("int run_ppmatch() {\n")
	g.pf("  int hits = 0;\n")
	g.pf("  for (int i = 0; i < 4; i++) {\n")
	g.pf("    if (ppmatch(i)) { hits += 1; }\n")
	g.pf("  }\n")
	g.pf("  return hits;\n}\n\n")
}

func (g *gen) main() {
	p := g.p
	g.pf("int main() {\n")
	for i := 0; i < p.Groups; i++ {
		iters := p.Iters/2 + g.rng.Intn(p.Iters)
		g.pf("  cfg_iters_%d = %d;\n", i, iters)
		g.pf("  cfg_buf_%d = %d;\n", i, p.BufSize)
		g.pf("  cfg_list_%d = %d;\n", i, 5+g.rng.Intn(8))
	}
	if p.TreeRec {
		g.pf("  cfg_tree_iters = %d;\n", p.Iters/3+g.rng.Intn(p.Iters/3+1))
	}
	g.pf("  int total = 0;\n")
	for i := 0; i < p.Groups; i++ {
		g.pf("  total += kernel_%d();\n", i)
	}
	if p.TreeRec {
		g.pf("  total += tree_kernel();\n")
	}
	if p.PlantBug {
		g.pf("  total += run_ppmatch();\n")
	}
	g.pf("  checksum = total;\n")
	g.pf("  print(checksum);\n")
	g.pf("  return checksum & 255;\n}\n")
}
