package workload

import (
	"fmt"
	"strings"
)

// ModuleFile is one generated module: name and source. It mirrors
// module.File without importing internal/module (which depends on
// internal/bench, which imports this package); callers convert with a
// one-line loop or module-side helpers.
type ModuleFile struct {
	Name   string
	Source string
}

// ModuleProject parameterizes the synthetic multi-file project used to
// benchmark incremental, dependency-batched analysis. Where Profiles
// model the paper's Table 1 program characteristics, a ModuleProject
// models a *codebase*: a four-layer include DAG (core → util → libs →
// aggregators → main) whose shape exercises the module build's
// batching, hashing and warm-unit reuse.
//
// The layering is deliberate: every lib module includes the two base
// modules, every aggregator includes a disjoint slice of libs, and main
// includes every aggregator — so editing one lib invalidates exactly
// that lib, its aggregator and main (3 of the default 50 modules),
// which is what BENCH_incremental.json and the invalidation tests pin.
//
// Each lib carries a `tweak_N` function whose constant is the designated
// 1-line edit site (see Edit), and every BugEvery-th lib plants a real
// use of an uninitialized heap field on an executed path, so warning
// comparisons between multi-file and flattened single-file builds are
// non-vacuous. Generation is fully deterministic.
type ModuleProject struct {
	Name string
	// Libs is the number of leaf library modules; LibsPerAgg groups them
	// under aggregator modules.
	Libs       int
	LibsPerAgg int
	// BugEvery plants an uninitialized-field read in every n-th lib
	// (1-based; 0 disables). The bug is executed, so dynamic runs warn.
	BugEvery int
}

// DefaultModuleProject is the committed 50-module shape: core + util +
// 40 libs + 7 aggregators + main.
var DefaultModuleProject = ModuleProject{
	Name: "modproj", Libs: 40, LibsPerAgg: 6, BugEvery: 13,
}

// NumModules returns the total module count of the generated project.
func (p ModuleProject) NumModules() int {
	return 2 + p.Libs + p.numAggs() + 1
}

func (p ModuleProject) numAggs() int {
	return (p.Libs + p.LibsPerAgg - 1) / p.LibsPerAgg
}

// GenerateModules renders the project as a module set for module.Build
// (or, flattened, for the single-file pipeline).
func (p ModuleProject) GenerateModules() []ModuleFile {
	if p.Libs <= 0 {
		p.Libs = 1
	}
	if p.LibsPerAgg <= 0 {
		p.LibsPerAgg = 1
	}
	files := []ModuleFile{
		{Name: "core", Source: p.coreSource()},
		{Name: "util", Source: p.utilSource()},
	}
	for i := 0; i < p.Libs; i++ {
		files = append(files, ModuleFile{Name: libName(i), Source: p.libSource(i)})
	}
	for j := 0; j < p.numAggs(); j++ {
		files = append(files, ModuleFile{Name: aggName(j), Source: p.aggSource(j)})
	}
	files = append(files, ModuleFile{Name: "main", Source: p.mainSource()})
	return files
}

func libName(i int) string { return fmt.Sprintf("lib_%02d", i) }
func aggName(j int) string { return fmt.Sprintf("agg_%d", j) }

func (p ModuleProject) coreSource() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// core: shared struct, allocator and store helpers (%s).\n", p.Name)
	b.WriteString("int checksum;\n")
	b.WriteString("struct Node { int a; int b; int c; struct Node *next; };\n")
	b.WriteString("struct Node *node_alloc() { return malloc(sizeof(struct Node)); }\n")
	b.WriteString("void set_cell(int *p, int v) { *p = v; }\n")
	b.WriteString("struct Pt { int x; int y; };\n")
	b.WriteString("struct Pt pt_mk(int x) { struct Pt p; p.x = x; p.y = x * 3; return p; }\n")
	b.WriteString("int vjoin(int n, ...) {\n")
	b.WriteString("  int t = 0;\n")
	b.WriteString("  for (int i = 0; i < n; i++) { t += va_arg(i); }\n")
	b.WriteString("  return t;\n}\n")
	b.WriteString("char corename[8] = \"core\";\n")
	return b.String()
}

func (p ModuleProject) utilSource() string {
	var b strings.Builder
	b.WriteString("// util: pure arithmetic helpers shared by every lib.\n")
	b.WriteString(`#include "core"` + "\n")
	b.WriteString("int clamp(int v, int lo, int hi) {\n")
	b.WriteString("  if (v < lo) { return lo; }\n")
	b.WriteString("  if (v > hi) { return hi; }\n")
	b.WriteString("  return v;\n}\n")
	b.WriteString("int mix(int a, int b) { return (a * 31 + b) ^ (b & 7); }\n")
	// tagsum builds a fully-defined tag (memset fill overwritten by a
	// string copy) and folds its bytes; the whole buffer is readable.
	b.WriteString("int tagsum(int salt) {\n")
	b.WriteString("  char tag[8];\n")
	b.WriteString("  memset(tag, 48 + (salt & 7), 8);\n")
	b.WriteString("  memcpy(tag, corename, 5);\n")
	b.WriteString("  int t = 0;\n")
	b.WriteString("  for (int i = 0; i < 8; i++) { t += tag[i]; }\n")
	b.WriteString("  return t;\n}\n")
	return b.String()
}

// tweakLine is the designated 1-line edit site of a lib module; Edit
// rewrites its constant.
func tweakLine(i, value int) string {
	return fmt.Sprintf("int tweak_%02d() { return %d; }", i, value)
}

func (p ModuleProject) buggy(i int) bool {
	return p.BugEvery > 0 && (i+1)%p.BugEvery == 0
}

func (p ModuleProject) libSource(i int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s: node builders over the core struct.\n", libName(i))
	b.WriteString(`#include "core"` + "\n")
	b.WriteString(`#include "util"` + "\n")
	b.WriteString(tweakLine(i, 1) + "\n")
	fmt.Fprintf(&b, "struct Node *mk_%02d(int seed) {\n", i)
	b.WriteString("  struct Node *n = node_alloc();\n")
	fmt.Fprintf(&b, "  set_cell(&n->a, mix(seed, %d));\n", i+1)
	fmt.Fprintf(&b, "  n->b = clamp(seed, 0, %d);\n", 64+i)
	if p.buggy(i) {
		// Planted bug: n->c stays uninitialized, and sum branches on it —
		// a genuine dynamic undefined-value use at a critical operation,
		// warned at this lib's own site (not folded into downstream
		// arithmetic, which would collapse all bugs into one warning at
		// the final checksum use).
		b.WriteString("  // BUG: c is left uninitialized.\n")
	} else {
		fmt.Fprintf(&b, "  n->c = seed + %d;\n", i)
	}
	b.WriteString("  n->next = 0;\n")
	b.WriteString("  return n;\n}\n")
	fmt.Fprintf(&b, "int sum_%02d(struct Node *n) {\n", i)
	// Local string literals: every lib's unit interns its own name (all
	// distinct) plus a tag shared by content with every other lib — the
	// linker must renumber the former and dedup the latter, never collide
	// on the per-unit ".str" names.
	fmt.Fprintf(&b, "  char lname[8] = \"l%02d\";\n", i)
	fmt.Fprintf(&b, "  char tagl[4] = \"ok\";\n")
	fmt.Fprintf(&b, "  struct Pt p = pt_mk(n->a);\n")
	if p.buggy(i) {
		fmt.Fprintf(&b, "  int t = n->a + n->b + tweak_%02d() + p.y + lname[1] + tagl[0] + vjoin(2, n->b, tagsum(n->a));\n", i)
		b.WriteString("  if (n->c > 0) { t += 1; }\n")
		b.WriteString("  return t;\n}\n")
	} else {
		fmt.Fprintf(&b, "  return n->a + n->b + n->c + tweak_%02d() + p.y + lname[1] + tagl[0] + vjoin(2, n->b, tagsum(n->a));\n}\n", i)
	}
	return b.String()
}

func (p ModuleProject) aggSource(j int) string {
	var b strings.Builder
	lo := j * p.LibsPerAgg
	hi := lo + p.LibsPerAgg
	if hi > p.Libs {
		hi = p.Libs
	}
	fmt.Fprintf(&b, "// %s: aggregates libs %d..%d.\n", aggName(j), lo, hi-1)
	for i := lo; i < hi; i++ {
		fmt.Fprintf(&b, "#include %q\n", libName(i))
	}
	fmt.Fprintf(&b, "int agg_run_%d() {\n", j)
	b.WriteString("  int t = 0;\n")
	b.WriteString("  struct Node *n = 0;\n")
	for i := lo; i < hi; i++ {
		fmt.Fprintf(&b, "  n = mk_%02d(%d);\n", i, 3*i+j+5)
		fmt.Fprintf(&b, "  t += sum_%02d(n);\n", i)
		b.WriteString("  free(n);\n")
	}
	b.WriteString("  return t;\n}\n")
	return b.String()
}

func (p ModuleProject) mainSource() string {
	var b strings.Builder
	b.WriteString("// main: drives every aggregator.\n")
	for j := 0; j < p.numAggs(); j++ {
		fmt.Fprintf(&b, "#include %q\n", aggName(j))
	}
	b.WriteString("int main() {\n")
	b.WriteString("  checksum = 0;\n")
	for j := 0; j < p.numAggs(); j++ {
		fmt.Fprintf(&b, "  checksum += agg_run_%d();\n", j)
	}
	b.WriteString("  print(checksum);\n")
	b.WriteString("  return checksum & 255;\n}\n")
	return b.String()
}

// Edit returns a copy of files with the named lib module's tweak
// constant bumped to value — the canonical 1-line edit driving the
// incremental benchmark and the invalidation tests. Non-lib modules
// (no tweak line) are returned unchanged with ok=false.
func Edit(files []ModuleFile, name string, value int) ([]ModuleFile, bool) {
	out := append([]ModuleFile(nil), files...)
	edited := false
	for i := range out {
		if out[i].Name != name {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(name, "lib_%d", &n); err != nil {
			break
		}
		old := tweakLine(n, 1)
		if !strings.Contains(out[i].Source, old) {
			break
		}
		out[i].Source = strings.Replace(out[i].Source, old, tweakLine(n, value), 1)
		edited = true
	}
	return out, edited
}
