package workload

import (
	"testing"

	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/pointer"
)

// TestBuildXLDeterministic pins the generator: identical profiles must
// print to identical IR (snapshot fingerprints and the parallel-solver
// parity tests both depend on this).
func TestBuildXLDeterministic(t *testing.T) {
	p, ok := XLByName("solver-xl-small")
	if !ok {
		t.Fatal("solver-xl-small missing")
	}
	a, b := ir.Print(BuildXL(p)), ir.Print(BuildXL(p))
	if a != b {
		t.Fatal("BuildXL is not deterministic")
	}
}

// TestXLConstraintScale pins the scale claim behind the profile names:
// solver-xl must present the solver with at least a million constraints
// (complex constraints + copy-edge insertions), an order of magnitude
// over the solver-large MiniC profile. The floors are deliberately below
// current measurements so solver improvements don't break the test, but
// high enough that a structural regression in the generator (lost
// fan-out, deduplicated return edges) fails loudly.
func TestXLConstraintScale(t *testing.T) {
	floors := map[string]int{
		"solver-xl-small":  15_000,
		"solver-xl-medium": 120_000,
		"solver-xl":        1_000_000,
	}
	for _, p := range XLProfiles {
		if testing.Short() && p.Name == "solver-xl" {
			continue
		}
		prog := BuildXL(p)
		res := pointer.Analyze(prog)
		total := res.Stats.Constraints + res.Stats.CopyEdges
		if floor := floors[p.Name]; total < floor {
			t.Errorf("%s: %d constraints (complex %d + copy %d), want >= %d",
				p.Name, total, res.Stats.Constraints, res.Stats.CopyEdges, floor)
		}
	}
}
