package workload_test

import (
	"strings"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/workload"
)

func TestDeterministic(t *testing.T) {
	for _, p := range workload.Profiles {
		a := workload.Generate(p)
		b := workload.Generate(p)
		if a != b {
			t.Fatalf("%s: generation is not deterministic", p.Name)
		}
	}
}

func TestFifteenProfiles(t *testing.T) {
	if len(workload.Profiles) != 15 {
		t.Fatalf("profiles = %d, want 15 (all SPEC2000 C benchmarks)", len(workload.Profiles))
	}
	seen := map[string]bool{}
	for _, p := range workload.Profiles {
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestByName(t *testing.T) {
	p, ok := workload.ByName("parser")
	if !ok || p.Spec != "197.parser" {
		t.Fatalf("ByName(parser) = %+v, %v", p, ok)
	}
	if _, ok := workload.ByName("300.twolf"); !ok {
		t.Error("lookup by SPEC id failed")
	}
	if _, ok := workload.ByName("nonesuch"); ok {
		t.Error("lookup of unknown profile succeeded")
	}
}

// TestAllProfilesCompileAndRunClean compiles every benchmark, runs it
// natively, and checks the ground truth: zero oracle warnings except the
// planted parser bug.
func TestAllProfilesCompileAndRunClean(t *testing.T) {
	for _, p := range workload.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			src := workload.Generate(p)
			prog, err := usher.Compile(p.Name+".c", src)
			if err != nil {
				t.Fatalf("compile: %v\n--- head of source ---\n%s", err, head(src, 40))
			}
			res, err := usher.RunNative(prog, usher.RunOptions{})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if p.PlantBug {
				if len(res.OracleWarnings) == 0 {
					t.Fatal("planted bug not triggered")
				}
				for _, w := range res.OracleWarnings {
					if w.Fn != "run_ppmatch" && w.Fn != "ppmatch" && w.Fn != "main" {
						t.Errorf("unexpected extra warning: %v", w)
					}
				}
			} else if len(res.OracleWarnings) != 0 {
				t.Fatalf("clean benchmark has oracle warnings: %v", res.OracleWarnings)
			}
			if res.Steps < 10000 {
				t.Errorf("benchmark too small: %d native steps", res.Steps)
			}
		})
	}
}

func head(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// TestSuiteCharacteristics pins the statistical shape of the suite that
// the experiment fidelity depends on. If a generator change moves these
// outside their bands, the Figure 10/11 reproduction quality needs
// re-checking (see EXPERIMENTS.md).
func TestSuiteCharacteristics(t *testing.T) {
	var totalObjs, uninitObjs int
	for _, p := range workload.Profiles {
		src := workload.Generate(p)
		prog, err := usher.Compile(p.Name+".c", src)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range prog.Objects() {
			totalObjs++
			if !o.ZeroInit {
				uninitObjs++
			}
		}
	}
	pctF := 100 * float64(uninitObjs) / float64(totalObjs)
	// The paper's Table 1 reports 34% on SPEC; the suite targets the same
	// regime (most memory initialized at allocation, a large minority
	// not).
	if pctF < 25 || pctF > 65 {
		t.Errorf("suite %%F = %.0f, want 25-65 (paper: 34)", pctF)
	}
}

// TestOverheadOrderingPerBenchmark is the headline shape guarantee: for
// every benchmark, overhead strictly decreases along the configuration
// ladder and Usher at least halves MSan's overhead.
func TestOverheadOrderingPerBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole suite")
	}
	for _, p := range workload.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			src := workload.Generate(p)
			prog, err := usher.Compile(p.Name+".c", src)
			if err != nil {
				t.Fatal(err)
			}
			native, err := usher.RunNative(prog, usher.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			work := func(cfg usher.Config) float64 {
				an := usher.MustAnalyze(prog, cfg)
				res, err := an.Run(usher.RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return float64(res.ShadowProps)*2 + float64(res.ShadowChecks)
			}
			msan := work(usher.ConfigMSan)
			prev := msan
			for _, cfg := range usher.Configs[1:] {
				w := work(cfg)
				if w > prev {
					t.Errorf("%v work %.0f above previous config's %.0f", cfg, w, prev)
				}
				prev = w
			}
			if prev > msan/2 {
				t.Errorf("Usher retains %.0f%% of MSan's dynamic work, want < 50%%", 100*prev/msan)
			}
			_ = native
		})
	}
}
