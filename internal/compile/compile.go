// Package compile bundles the frontend pipeline: parse, type-check, lower
// and establish SSA. It is the entry point used by the facade, the
// benchmark harness and tests.
package compile

import (
	"fmt"

	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/lower"
	"github.com/valueflow/usher/internal/parser"
	"github.com/valueflow/usher/internal/ssa"
	"github.com/valueflow/usher/internal/types"
)

// Source compiles MiniC source into SSA-form IR (the paper's O0+IM
// baseline: lowering plus mem2reg; the inlining step of O0+IM and the
// O1/O2 pipelines live in package passes).
func Source(file, src string) (*ir.Program, error) {
	prog, err := parser.Parse(file, src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	irp, err := lower.Lower(prog, info)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	ssa.Promote(irp)
	for _, fn := range irp.Funcs {
		ir.ComputeCFG(fn)
	}
	if err := ir.Verify(irp); err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	if err := ssa.VerifySSA(irp); err != nil {
		return nil, fmt.Errorf("ssa: %w", err)
	}
	return irp, nil
}

// MustSource compiles known-good source, panicking on error. For tests
// and generated workloads.
func MustSource(file, src string) *ir.Program {
	irp, err := Source(file, src)
	if err != nil {
		panic(fmt.Sprintf("compile %s: %v", file, err))
	}
	return irp
}
