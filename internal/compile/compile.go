// Package compile bundles the frontend pipeline: parse, type-check, lower
// and establish SSA. It is the entry point used by the facade, the
// benchmark harness and tests.
package compile

import (
	"github.com/valueflow/usher/internal/diag"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/lower"
	"github.com/valueflow/usher/internal/parser"
	"github.com/valueflow/usher/internal/ssa"
	"github.com/valueflow/usher/internal/types"
)

// Source compiles MiniC source into SSA-form IR (the paper's O0+IM
// baseline: lowering plus mem2reg; the inlining step of O0+IM and the
// O1/O2 pipelines live in package passes).
//
// Source never panics on malformed input: every frontend problem is
// reported as positioned diagnostics (see package diag), and an
// unexpected panic below — an internal invariant violation — is
// converted into an internal-error diagnostic at this boundary.
func Source(file, src string) (_ *ir.Program, err error) {
	defer diag.Guard(diag.PhaseInternal, &err)
	prog, err := parser.Parse(file, src)
	if err != nil {
		return nil, err
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, err
	}
	irp, err := lower.Lower(prog, info)
	if err != nil {
		return nil, err
	}
	ssa.Promote(irp)
	for _, fn := range irp.Funcs {
		ir.ComputeCFG(fn)
	}
	var diags diag.List
	if err := ir.Verify(irp); err != nil {
		diags.Merge(diag.PhaseVerify, err)
	} else if err := ssa.VerifySSA(irp); err != nil {
		diags.Merge(diag.PhaseVerify, err)
	}
	if err := diags.Err(); err != nil {
		return nil, err
	}
	return irp, nil
}

// MustSource compiles known-good source, panicking on error. For tests
// and generated workloads; passing source that does not compile is a
// caller contract violation.
func MustSource(file, src string) *ir.Program {
	irp, err := Source(file, src)
	diag.MustNil("compile "+file, err)
	return irp
}
