// Package compile bundles the frontend pipeline: parse, type-check, lower
// and establish SSA. It is the entry point used by the facade, the
// benchmark harness and tests. The staged implementation lives in
// internal/pipeline (frontend.go), where each stage is a registered,
// observable pass; this package remains the dependency-light entry point.
package compile

import (
	"github.com/valueflow/usher/internal/diag"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/pipeline"
)

// Source compiles MiniC source into SSA-form IR (the paper's O0+IM
// baseline: lowering plus mem2reg; the inlining step of O0+IM and the
// O1/O2 pipelines live in package passes).
//
// Source never panics on malformed input: every frontend problem is
// reported as positioned diagnostics (see package diag), and an
// unexpected panic below — an internal invariant violation — is
// converted into an internal-error diagnostic at this boundary.
func Source(file, src string) (*ir.Program, error) {
	return pipeline.Compile(file, src, nil)
}

// MustSource compiles known-good source, panicking on error. For tests
// and generated workloads; passing source that does not compile is a
// caller contract violation.
func MustSource(file, src string) *ir.Program {
	irp, err := Source(file, src)
	diag.MustNil("compile "+file, err)
	return irp
}
