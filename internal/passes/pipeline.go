package passes

import (
	"fmt"

	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/ssa"
)

// Level is an optimization level from the paper's evaluation.
type Level int

// Optimization levels.
const (
	// O0 applies nothing beyond lowering and mem2reg.
	O0 Level = iota
	// O0IM is the paper's debugging-friendly configuration: inlining of
	// function-pointer-argument functions and allocation wrappers (heap
	// cloning), then mem2reg.
	O0IM
	// O1 adds one round of scalar optimizations.
	O1
	// O2 adds small-function inlining and further rounds.
	O2
)

func (l Level) String() string {
	switch l {
	case O0:
		return "O0"
	case O0IM:
		return "O0+IM"
	case O1:
		return "O1"
	default:
		return "O2"
	}
}

// Apply runs the pipeline for the level, in place, and re-verifies the
// program.
func Apply(prog *ir.Program, level Level) error {
	if level >= O0IM {
		InlineFunctionPointerArgs(prog)
		InlineAllocWrappers(prog)
		ssa.Promote(prog)
		recompute(prog)
	}
	rounds := 0
	switch level {
	case O1:
		rounds = 1
	case O2:
		rounds = 3
	}
	if level >= O2 {
		InlineSmall(prog)
		ssa.Promote(prog)
		recompute(prog)
	}
	for i := 0; i < rounds; i++ {
		changed := 0
		changed += ConstFold(prog)
		changed += FoldBranches(prog)
		changed += CSE(prog)
		changed += DCE(prog)
		recompute(prog)
		if changed == 0 {
			break
		}
	}
	if err := ir.Verify(prog); err != nil {
		return fmt.Errorf("passes(%s) broke the IR: %w", level, err)
	}
	if err := ssa.VerifySSA(prog); err != nil {
		return fmt.Errorf("passes(%s) broke SSA: %w", level, err)
	}
	return nil
}

func recompute(prog *ir.Program) {
	for _, fn := range prog.Funcs {
		if fn.HasBody {
			ir.ComputeCFG(fn)
		}
	}
}
