package passes

import (
	"fmt"

	"github.com/valueflow/usher/internal/cfg"
	"github.com/valueflow/usher/internal/ir"
)

// ConstFold folds binary operations over constants and propagates copies
// of constants and registers, returning the number of rewrites.
func ConstFold(prog *ir.Program) int {
	n := 0
	for _, fn := range prog.Funcs {
		if fn.HasBody {
			n += constFoldFunc(fn)
		}
	}
	return n
}

func constFoldFunc(fn *ir.Function) int {
	replaced := make(map[*ir.Register]ir.Value)
	var resolve func(v ir.Value) ir.Value
	resolve = func(v ir.Value) ir.Value {
		if r, ok := v.(*ir.Register); ok {
			if rep, ok := replaced[r]; ok {
				res := resolve(rep)
				replaced[r] = res
				return res
			}
		}
		return v
	}
	n := 0
	for changed := true; changed; {
		changed = false
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch in := in.(type) {
				case *ir.Copy:
					if _, done := replaced[in.Dst]; done {
						continue
					}
					replaced[in.Dst] = resolve(in.Src)
					changed = true
					n++
				case *ir.BinOp:
					if _, done := replaced[in.Dst]; done {
						continue
					}
					x, xok := resolve(in.X).(*ir.Const)
					y, yok := resolve(in.Y).(*ir.Const)
					if xok && yok {
						if v, ok := foldOp(in.Op, x.Val, y.Val); ok {
							replaced[in.Dst] = ir.IntConst(v)
							changed = true
							n++
						}
					}
				case *ir.Phi:
					if _, done := replaced[in.Dst]; done {
						continue
					}
					// A phi whose incomings all resolve to one value (or
					// itself) is that value.
					var uniq ir.Value
					trivial := true
					for _, v := range in.Vals {
						rv := resolve(v)
						if rv == in.Dst {
							continue
						}
						if uniq == nil {
							uniq = rv
						} else if !sameValue(uniq, rv) {
							trivial = false
							break
						}
					}
					if trivial && uniq != nil {
						replaced[in.Dst] = uniq
						changed = true
						n++
					}
				}
			}
		}
	}
	if len(replaced) == 0 {
		return 0
	}
	for _, b := range fn.Blocks {
		b.RemoveInstrs(func(in ir.Instr) bool {
			dst := in.Defines()
			if dst == nil {
				return false
			}
			switch in.(type) {
			case *ir.Copy, *ir.Phi:
				_, gone := replaced[dst]
				return gone
			case *ir.BinOp:
				_, gone := replaced[dst]
				return gone
			}
			return false
		})
		for _, in := range b.Instrs {
			rewrite(in, resolve)
		}
	}
	return n
}

func sameValue(a, b ir.Value) bool {
	if a == b {
		return true
	}
	ca, aok := a.(*ir.Const)
	cb, bok := b.(*ir.Const)
	return aok && bok && ca.Val == cb.Val
}

func foldOp(op ir.Op, x, y int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return x + y, true
	case ir.OpSub:
		return x - y, true
	case ir.OpMul:
		return x * y, true
	case ir.OpDiv:
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case ir.OpRem:
		if y == 0 {
			return 0, false
		}
		return x % y, true
	case ir.OpShl:
		return x << uint(y&63), true
	case ir.OpShr:
		return x >> uint(y&63), true
	case ir.OpAnd:
		return x & y, true
	case ir.OpOr:
		return x | y, true
	case ir.OpXor:
		return x ^ y, true
	case ir.OpEq:
		return b2i(x == y), true
	case ir.OpNe:
		return b2i(x != y), true
	case ir.OpLt:
		return b2i(x < y), true
	case ir.OpLe:
		return b2i(x <= y), true
	case ir.OpGt:
		return b2i(x > y), true
	case ir.OpGe:
		return b2i(x >= y), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// FoldBranches rewrites branches on constants into jumps, updates the
// phis of the abandoned successors, and prunes unreachable blocks.
func FoldBranches(prog *ir.Program) int {
	n := 0
	for _, fn := range prog.Funcs {
		if !fn.HasBody {
			continue
		}
		for _, b := range fn.Blocks {
			br, ok := b.Terminator().(*ir.Branch)
			if !ok {
				continue
			}
			c, ok := br.Cond.(*ir.Const)
			if !ok {
				continue
			}
			taken, dropped := br.Then, br.Else
			if c.Val == 0 {
				taken, dropped = br.Else, br.Then
			}
			j := ir.NewJump(taken)
			ir.Adopt(j, b, br.Label())
			b.Instrs[len(b.Instrs)-1] = j
			if dropped != taken {
				for _, in := range dropped.Instrs {
					if phi, ok := in.(*ir.Phi); ok {
						phi.RemoveIncoming(b)
					}
				}
			}
			n++
		}
		if pruneUnreachable(fn) {
			n++
		}
		ir.ComputeCFG(fn)
		// Phis that lost all but one incoming become copies.
		for _, b := range fn.Blocks {
			for i, in := range b.Instrs {
				if phi, ok := in.(*ir.Phi); ok && len(phi.Vals) == 1 {
					cp := ir.NewCopy(phi.Dst, phi.Vals[0])
					cp.SetPos(phi.Pos())
					ir.Adopt(cp, b, phi.Label())
					b.Instrs[i] = cp
				}
			}
		}
	}
	return n
}

// pruneUnreachable removes unreachable blocks, dropping their phi
// contributions in surviving blocks. Returns whether anything changed.
func pruneUnreachable(fn *ir.Function) bool {
	reach := make(map[*ir.Block]bool)
	var stack []*ir.Block
	entry := fn.Entry()
	if entry == nil {
		return false
	}
	reach[entry] = true
	stack = append(stack, entry)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var succs []*ir.Block
		switch t := b.Terminator().(type) {
		case *ir.Jump:
			succs = []*ir.Block{t.Target}
		case *ir.Branch:
			succs = []*ir.Block{t.Then, t.Else}
		}
		for _, s := range succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	if len(reach) == len(fn.Blocks) {
		return false
	}
	var kept []*ir.Block
	for _, b := range fn.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	for _, b := range kept {
		for _, in := range b.Instrs {
			if phi, ok := in.(*ir.Phi); ok {
				for i := len(phi.Preds) - 1; i >= 0; i-- {
					if !reach[phi.Preds[i]] {
						phi.RemoveIncoming(phi.Preds[i])
					}
				}
			}
		}
	}
	fn.Blocks = kept
	return true
}

// DCE removes pure instructions whose results are unused (including the
// loads and allocations this makes dead). Returns the number removed.
func DCE(prog *ir.Program) int {
	n := 0
	for _, fn := range prog.Funcs {
		if !fn.HasBody {
			continue
		}
		for {
			used := make(map[*ir.Register]bool)
			for _, b := range fn.Blocks {
				for _, in := range b.Instrs {
					for _, op := range in.Operands() {
						if r, ok := op.(*ir.Register); ok {
							used[r] = true
						}
					}
				}
			}
			removed := 0
			for _, b := range fn.Blocks {
				b.RemoveInstrs(func(in ir.Instr) bool {
					dst := in.Defines()
					if dst == nil || used[dst] {
						return false
					}
					switch in.(type) {
					case *ir.Copy, *ir.BinOp, *ir.FieldAddr, *ir.IndexAddr, *ir.Phi, *ir.Load, *ir.Alloc:
						removed++
						return true
					}
					return false
				})
			}
			n += removed
			if removed == 0 {
				break
			}
		}
	}
	return n
}

// CSE performs dominator-scoped common subexpression elimination over
// pure register computations. Returns the number of replaced
// instructions.
func CSE(prog *ir.Program) int {
	n := 0
	for _, fn := range prog.Funcs {
		if !fn.HasBody {
			continue
		}
		ir.ComputeCFG(fn)
		dom := cfg.NewDomTree(fn)
		replaced := make(map[*ir.Register]ir.Value)
		resolve := func(v ir.Value) ir.Value {
			for {
				r, ok := v.(*ir.Register)
				if !ok {
					return v
				}
				rep, ok := replaced[r]
				if !ok {
					return v
				}
				v = rep
			}
		}
		avail := make(map[string]*ir.Register)
		var walk func(b *ir.Block, keys []string)
		walk = func(b *ir.Block, keys []string) {
			var added []string
			for _, in := range b.Instrs {
				rewrite(in, resolve)
				key := exprKey(in)
				if key == "" {
					continue
				}
				if prev, ok := avail[key]; ok {
					replaced[in.Defines()] = prev
					n++
					continue
				}
				avail[key] = in.Defines()
				added = append(added, key)
			}
			for _, kid := range dom.Children(b) {
				walk(kid, nil)
			}
			for _, k := range added {
				delete(avail, k)
			}
		}
		walk(fn.Entry(), nil)
		for _, b := range fn.Blocks {
			b.RemoveInstrs(func(in ir.Instr) bool {
				dst := in.Defines()
				if dst == nil {
					return false
				}
				_, gone := replaced[dst]
				return gone
			})
			for _, in := range b.Instrs {
				rewrite(in, resolve)
			}
		}
	}
	return n
}

// exprKey returns a value-numbering key for pure computations, or "".
func exprKey(in ir.Instr) string {
	valKey := func(v ir.Value) string {
		switch v := v.(type) {
		case *ir.Const:
			return fmt.Sprintf("c%d", v.Val)
		case *ir.Register:
			return fmt.Sprintf("r%d", v.ID)
		case *ir.GlobalAddr:
			return fmt.Sprintf("g%d", v.Obj.ID)
		case *ir.FuncValue:
			return "f" + v.Fn.Name
		}
		return "?"
	}
	switch in := in.(type) {
	case *ir.BinOp:
		return fmt.Sprintf("b%d|%s|%s", in.Op, valKey(in.X), valKey(in.Y))
	case *ir.FieldAddr:
		return fmt.Sprintf("fa%d|%s", in.Off, valKey(in.Base))
	case *ir.IndexAddr:
		return fmt.Sprintf("ia|%s|%s", valKey(in.Base), valKey(in.Idx))
	}
	return ""
}

// rewrite applies resolve to every operand of in.
func rewrite(in ir.Instr, resolve func(ir.Value) ir.Value) {
	switch in := in.(type) {
	case *ir.Alloc:
		if in.DynSize != nil {
			in.DynSize = resolve(in.DynSize)
		}
	case *ir.Copy:
		in.Src = resolve(in.Src)
	case *ir.BinOp:
		in.X, in.Y = resolve(in.X), resolve(in.Y)
	case *ir.Load:
		in.Addr = resolve(in.Addr)
	case *ir.Store:
		in.Addr, in.Val = resolve(in.Addr), resolve(in.Val)
	case *ir.MemSet:
		in.To, in.Val, in.Len = resolve(in.To), resolve(in.Val), resolve(in.Len)
	case *ir.MemCopy:
		in.To, in.From, in.Len = resolve(in.To), resolve(in.From), resolve(in.Len)
	case *ir.FieldAddr:
		in.Base = resolve(in.Base)
	case *ir.IndexAddr:
		in.Base, in.Idx = resolve(in.Base), resolve(in.Idx)
	case *ir.Call:
		if in.Callee != nil {
			in.Callee = resolve(in.Callee)
		}
		for i := range in.Args {
			in.Args[i] = resolve(in.Args[i])
		}
	case *ir.Ret:
		if in.Val != nil {
			in.Val = resolve(in.Val)
		}
	case *ir.Branch:
		in.Cond = resolve(in.Cond)
	case *ir.Phi:
		for i := range in.Vals {
			in.Vals[i] = resolve(in.Vals[i])
		}
	}
}
