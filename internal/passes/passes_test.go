package passes_test

import (
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/interp"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/ssa"
)

func runProg(t *testing.T, prog *ir.Program, args ...int64) *interp.Result {
	t.Helper()
	var vals []interp.Value
	for _, a := range args {
		vals = append(vals, interp.IntVal(a))
	}
	res, err := interp.Run(prog, "main", vals, interp.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// checkSemantics compiles src twice, applies the pass pipeline to one
// copy, and compares results.
func checkSemantics(t *testing.T, src string, level passes.Level, args ...int64) (*ir.Program, *ir.Program) {
	t.Helper()
	plain := compile.MustSource("t.c", src)
	opt := compile.MustSource("t.c", src)
	if err := passes.Apply(opt, level); err != nil {
		t.Fatalf("apply %v: %v", level, err)
	}
	r1 := runProg(t, plain, args...)
	r2 := runProg(t, opt, args...)
	if r1.Exit.Int != r2.Exit.Int {
		t.Fatalf("[%v] exit changed: %d vs %d\n%s", level, r1.Exit.Int, r2.Exit.Int, ir.Print(opt))
	}
	if len(r1.Out) != len(r2.Out) {
		t.Fatalf("[%v] output length changed: %v vs %v", level, r1.Out, r2.Out)
	}
	for i := range r1.Out {
		if r1.Out[i] != r2.Out[i] {
			t.Fatalf("[%v] output %d changed: %d vs %d", level, i, r1.Out[i], r2.Out[i])
		}
	}
	return plain, opt
}

const mixedProgram = `
int g;
struct Pair { int a; int b; };
int helper(int x) { return x * 3 + 1; }
int *mkbuf(int n) { return malloc(n); }
int apply(int (*f)(int), int v) { return f(v); }
int main() {
  int s = 0;
  int *buf = mkbuf(8);
  for (int i = 0; i < 8; i++) { buf[i] = apply(helper, i); }
  for (int i = 0; i < 8; i++) { s += buf[i]; }
  struct Pair p;
  p.a = s;
  p.b = 2 * 3 + 4;
  g = p.a + p.b;
  print(g);
  free(buf);
  return g % 1000;
}`

func TestPipelinesPreserveSemantics(t *testing.T) {
	for _, level := range []passes.Level{passes.O0IM, passes.O1, passes.O2} {
		checkSemantics(t, mixedProgram, level)
	}
}

func TestInlineFunctionPointerArgs(t *testing.T) {
	src := `
int inc(int x) { return x + 1; }
int apply(int (*f)(int), int v) { return f(v); }
int main() { return apply(inc, 41); }`
	prog := compile.MustSource("t.c", src)
	n := passes.InlineFunctionPointerArgs(prog)
	if n == 0 {
		t.Fatal("apply (function-pointer arg) was not inlined")
	}
	ssa.Promote(prog)
	if err := ir.Verify(prog); err != nil {
		t.Fatalf("verify: %v\n%s", err, ir.Print(prog))
	}
	res := runProg(t, prog)
	if res.Exit.Int != 42 {
		t.Fatalf("exit = %d, want 42", res.Exit.Int)
	}
	// main must no longer call apply.
	main := prog.FuncByName("main")
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && c.Direct() != nil && c.Direct().Name == "apply" {
				t.Error("call to apply still present")
			}
		}
	}
}

func TestHeapCloningViaWrapperInlining(t *testing.T) {
	src := `
int *mk(int n) { return malloc(n); }
int main() {
  int *a = mk(2);
  int *b = mk(2);
  a[0] = 1;
  b[0] = 2;
  return a[0] + b[0];
}`
	prog := compile.MustSource("t.c", src)
	n := passes.InlineAllocWrappers(prog)
	if n != 2 {
		t.Fatalf("inlined %d wrapper calls, want 2", n)
	}
	// The two call sites must now own distinct cloned heap objects.
	var clones []*ir.Object
	for _, o := range prog.Objects() {
		if o.CloneOf != nil {
			clones = append(clones, o)
		}
	}
	if len(clones) != 2 {
		t.Fatalf("heap clones = %d, want 2", len(clones))
	}
	if clones[0].CloneSite == clones[1].CloneSite {
		t.Error("clones share a call site")
	}
	res := runProg(t, prog)
	if res.Exit.Int != 3 {
		t.Fatalf("exit = %d, want 3", res.Exit.Int)
	}
}

func TestConstFoldAndBranches(t *testing.T) {
	src := `
int main() {
  int a = 2 + 3;
  int b = a * 4;
  if (b == 20) { return 1; }
  return 0;
}`
	prog := compile.MustSource("t.c", src)
	if err := passes.Apply(prog, passes.O1); err != nil {
		t.Fatal(err)
	}
	main := prog.FuncByName("main")
	// Everything folds: main should be nearly empty, returning 1.
	var binops, branches int
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			switch in.(type) {
			case *ir.BinOp:
				binops++
			case *ir.Branch:
				branches++
			}
		}
	}
	if binops != 0 || branches != 0 {
		t.Errorf("binops=%d branches=%d, want 0/0:\n%s", binops, branches, ir.PrintFunc(main))
	}
	res := runProg(t, prog)
	if res.Exit.Int != 1 {
		t.Fatalf("exit = %d, want 1", res.Exit.Int)
	}
}

func TestDCERemovesDeadLoads(t *testing.T) {
	src := `
int main() {
  int *p = malloc(4);
  p[0] = 1;
  int dead = p[2];
  return p[0];
}`
	prog := compile.MustSource("t.c", src)
	before := countLoads(prog)
	passes.DCE(prog)
	after := countLoads(prog)
	if after >= before {
		t.Errorf("DCE did not remove the dead load: %d -> %d", before, after)
	}
	res := runProg(t, prog)
	if res.Exit.Int != 1 {
		t.Fatalf("exit = %d, want 1", res.Exit.Int)
	}
}

func countLoads(prog *ir.Program) int {
	n := 0
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if _, ok := in.(*ir.Load); ok {
					n++
				}
			}
		}
	}
	return n
}

func TestCSE(t *testing.T) {
	src := `
int main(int x) {
  int a = x * 7;
  int b = x * 7;
  return a + b;
}`
	prog := compile.MustSource("t.c", src)
	n := passes.CSE(prog)
	if n == 0 {
		t.Error("CSE found no duplicate x*7")
	}
	res := runProg(t, prog, 3)
	if res.Exit.Int != 42 {
		t.Fatalf("exit = %d, want 42", res.Exit.Int)
	}
}

func TestRecursionNotInlined(t *testing.T) {
	src := `
int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
int main() { return fact(5); }`
	prog := compile.MustSource("t.c", src)
	if err := passes.Apply(prog, passes.O2); err != nil {
		t.Fatal(err)
	}
	res := runProg(t, prog)
	if res.Exit.Int != 120 {
		t.Fatalf("fact(5) = %d, want 120", res.Exit.Int)
	}
}

func TestO1CanHideUndefinedUses(t *testing.T) {
	// The paper (§4.3) notes that higher optimization levels make
	// undefined-value detection nondeterministic because dead undefined
	// computations disappear. DCE removing a dead undefined load is the
	// benign version of that effect; semantics of live code still agree.
	src := `
int main() {
  int *p = malloc(2);
  p[0] = 1;
  int dead = p[1];
  return p[0];
}`
	plain := compile.MustSource("t.c", src)
	opt := compile.MustSource("t.c", src)
	if err := passes.Apply(opt, passes.O1); err != nil {
		t.Fatal(err)
	}
	r1 := runProg(t, plain)
	r2 := runProg(t, opt)
	if r1.Exit.Int != r2.Exit.Int {
		t.Fatalf("exit changed: %d vs %d", r1.Exit.Int, r2.Exit.Int)
	}
}
