// Package passes implements the IR transformation pipelines of the
// paper's evaluation:
//
//   - the "IM" step of O0+IM: iterative inlining of functions taking
//     function-pointer arguments (simplifying the call graph) followed by
//     mem2reg;
//   - inlining of allocation wrappers, which realizes the paper's
//     1-callsite heap cloning: every inlined copy carries fresh abstract
//     objects, so each wrapper call site gets its own allocation site;
//   - the O1/O2 scalar optimization pipelines (constant propagation, copy
//     propagation, branch folding, CSE, dead code elimination) used in
//     §4.6 to study how compiler optimization levels interact with
//     instrumentation.
package passes

import (
	"fmt"

	"github.com/valueflow/usher/internal/ir"
)

// inlineBudget bounds how many call sites a single pass may inline, as a
// guard against code-size explosion.
const inlineBudget = 2000

// maxInlineInstrs is the callee size limit for wrapper/small-function
// inlining.
const maxInlineInstrs = 40

// InlineFunctionPointerArgs iteratively inlines calls to functions that
// receive function pointers (detected as parameters flowing into indirect
// call callees), excluding directly recursive functions. Returns the
// number of call sites inlined.
func InlineFunctionPointerArgs(prog *ir.Program) int {
	total := 0
	for round := 0; round < 10; round++ {
		candidates := make(map[*ir.Function]bool)
		for _, fn := range prog.Funcs {
			if fn.HasBody && !directlyRecursive(fn) && paramFlowsToIndirectCall(fn) {
				candidates[fn] = true
			}
		}
		n := inlineMatching(prog, func(c *ir.Call, callee *ir.Function) bool {
			return candidates[callee]
		})
		total += n
		if n == 0 {
			break
		}
	}
	return total
}

// InlineAllocWrappers inlines small non-recursive functions containing
// heap allocation sites, cloning the heap objects per call site (the
// paper's 1-callsite heap cloning). Returns the number of call sites
// inlined.
func InlineAllocWrappers(prog *ir.Program) int {
	total := 0
	for round := 0; round < 4; round++ {
		n := inlineMatching(prog, func(c *ir.Call, callee *ir.Function) bool {
			return isAllocWrapper(callee)
		})
		total += n
		if n == 0 {
			break
		}
	}
	return total
}

// InlineSmall inlines calls to small pure arithmetic helpers (no memory
// operations), the conservative cost-driven inlining of the O2 pipeline.
// Memory-touching functions stay out-of-line, as a production inliner's
// cost model would keep most of them.
func InlineSmall(prog *ir.Program) int {
	return inlineMatching(prog, func(c *ir.Call, callee *ir.Function) bool {
		if directlyRecursive(callee) || instrCount(callee) > maxInlineInstrs/2 {
			return false
		}
		for _, b := range callee.Blocks {
			for _, in := range b.Instrs {
				switch in.(type) {
				case *ir.Load, *ir.Store, *ir.Alloc, *ir.MemSet, *ir.MemCopy:
					return false
				}
			}
		}
		return true
	})
}

func instrCount(fn *ir.Function) int {
	n := 0
	for _, b := range fn.Blocks {
		n += len(b.Instrs)
	}
	return n
}

func directlyRecursive(fn *ir.Function) bool {
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && c.Direct() == fn {
				return true
			}
		}
	}
	return false
}

// paramFlowsToIndirectCall reports whether any parameter of fn reaches
// the callee operand of an indirect call through copies and phis.
func paramFlowsToIndirectCall(fn *ir.Function) bool {
	fromParam := make(map[*ir.Register]bool)
	for _, p := range fn.Params {
		fromParam[p] = true
	}
	for changed := true; changed; {
		changed = false
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				var dst *ir.Register
				var srcs []ir.Value
				switch in := in.(type) {
				case *ir.Copy:
					dst, srcs = in.Dst, []ir.Value{in.Src}
				case *ir.Phi:
					dst, srcs = in.Dst, in.Vals
				default:
					continue
				}
				if fromParam[dst] {
					continue
				}
				for _, s := range srcs {
					if r, ok := s.(*ir.Register); ok && fromParam[r] {
						fromParam[dst] = true
						changed = true
					}
				}
			}
		}
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			c, ok := in.(*ir.Call)
			if !ok || c.Builtin != ir.NotBuiltin || c.Direct() != nil {
				continue
			}
			if r, ok := c.Callee.(*ir.Register); ok && fromParam[r] {
				return true
			}
		}
	}
	return false
}

// isAllocWrapper reports whether fn is a small non-recursive function
// that allocates heap memory.
func isAllocWrapper(fn *ir.Function) bool {
	if !fn.HasBody || directlyRecursive(fn) || instrCount(fn) > maxInlineInstrs {
		return false
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if a, ok := in.(*ir.Alloc); ok && a.Obj.Kind == ir.ObjHeap {
				return true
			}
		}
	}
	return false
}

// inlineMatching inlines every direct call site accepted by keep, up to
// the budget. It returns the number of call sites inlined.
func inlineMatching(prog *ir.Program, keep func(*ir.Call, *ir.Function) bool) int {
	n := 0
	for _, caller := range prog.Funcs {
		if !caller.HasBody {
			continue
		}
		// Collect call sites first: inlining mutates the block list.
		var sites []*ir.Call
		for _, b := range caller.Blocks {
			for _, in := range b.Instrs {
				if c, ok := in.(*ir.Call); ok && c.Builtin == ir.NotBuiltin {
					callee := c.Direct()
					if callee != nil && callee.HasBody && callee != caller && keep(c, callee) {
						sites = append(sites, c)
					}
				}
			}
		}
		for _, c := range sites {
			if n >= inlineBudget {
				return n
			}
			inlineCall(prog, c)
			n++
		}
		if len(sites) > 0 {
			ir.ComputeCFG(caller)
		}
	}
	return n
}

// inlineCall splices the body of the call's direct callee into the
// caller, giving every cloned allocation site a fresh abstract object
// (heap cloning).
func inlineCall(prog *ir.Program, call *ir.Call) {
	caller := call.Parent().Fn
	callee := call.Direct()
	callBlock := call.Parent()

	// Value map: callee values -> caller values.
	vmap := make(map[ir.Value]ir.Value)
	for i, p := range callee.Params {
		if i < len(call.Args) {
			vmap[p] = call.Args[i]
		} else {
			vmap[p] = ir.IntConst(0)
		}
	}
	mapVal := func(v ir.Value) ir.Value {
		if v == nil {
			return nil
		}
		if m, ok := vmap[v]; ok {
			return m
		}
		return v
	}
	newReg := func(r *ir.Register) *ir.Register {
		nr := caller.NewReg(r.Name)
		vmap[r] = nr
		return nr
	}

	// Clone blocks (shells first so jumps can target them).
	bmap := make(map[*ir.Block]*ir.Block, len(callee.Blocks))
	for _, b := range callee.Blocks {
		bmap[b] = caller.NewBlock(fmt.Sprintf("inl.%s.%s", callee.Name, b.Name))
	}

	// Split the call block: instructions after the call move to a
	// continuation block.
	post := caller.NewBlock(callBlock.Name + ".cont")
	callIdx := -1
	for i, in := range callBlock.Instrs {
		if in == call {
			callIdx = i
			break
		}
	}
	moved := callBlock.Instrs[callIdx+1:]
	callBlock.Instrs = append([]ir.Instr(nil), callBlock.Instrs[:callIdx]...)
	// Reattach moved instructions to post (labels are kept).
	post.Instrs = append(post.Instrs, moved...)
	for _, in := range moved {
		ir.Reparent(in, post)
	}
	// Phis elsewhere that named callBlock as predecessor now receive
	// control from post.
	for _, b := range caller.Blocks {
		for _, in := range b.Instrs {
			if phi, ok := in.(*ir.Phi); ok {
				for i, p := range phi.Preds {
					if p == callBlock {
						phi.Preds[i] = post
					}
				}
			}
		}
	}
	callBlock.Append(ir.NewJump(bmap[callee.Entry()]))

	// Clone instructions.
	var retVals []ir.Value
	var retBlocks []*ir.Block
	for _, b := range callee.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			switch in := in.(type) {
			case *ir.Alloc:
				obj := prog.NewObject(in.Obj.Name, in.Obj.Size, in.Obj.Kind)
				obj.ZeroInit = in.Obj.ZeroInit
				obj.Pinned = in.Obj.Pinned
				obj.InitVal = in.Obj.InitVal
				if in.Obj.InitVals != nil {
					obj.InitVals = append([]int64(nil), in.Obj.InitVals...)
				}
				obj.Fn = caller
				if in.Obj.Collapsed() {
					obj.Collapse()
				}
				if in.Obj.Kind == ir.ObjHeap {
					obj.CloneOf = in.Obj
					obj.CloneSite = call
				}
				na := ir.NewAlloc(newReg(in.Dst), obj)
				na.DynSize = mapVal(in.DynSize)
				na.SetPos(in.Pos())
				nb.Append(na)
			case *ir.Copy:
				nc := ir.NewCopy(newReg(in.Dst), mapVal(in.Src))
				nc.SetPos(in.Pos())
				nb.Append(nc)
			case *ir.BinOp:
				nbop := ir.NewBinOp(newReg(in.Dst), in.Op, mapVal(in.X), mapVal(in.Y))
				nbop.SetPos(in.Pos())
				nb.Append(nbop)
			case *ir.Load:
				nl := ir.NewLoad(newReg(in.Dst), mapVal(in.Addr))
				nl.SetPos(in.Pos())
				nb.Append(nl)
			case *ir.Store:
				ns := ir.NewStore(mapVal(in.Addr), mapVal(in.Val))
				ns.SetPos(in.Pos())
				nb.Append(ns)
			case *ir.MemSet:
				nm := ir.NewMemSet(mapVal(in.To), mapVal(in.Val), mapVal(in.Len))
				nm.SetPos(in.Pos())
				nb.Append(nm)
			case *ir.MemCopy:
				nm := ir.NewMemCopy(mapVal(in.To), mapVal(in.From), mapVal(in.Len))
				nm.SetPos(in.Pos())
				nb.Append(nm)
			case *ir.FieldAddr:
				nf := ir.NewFieldAddr(newReg(in.Dst), mapVal(in.Base), in.Off)
				nf.SetPos(in.Pos())
				nb.Append(nf)
			case *ir.IndexAddr:
				ni := ir.NewIndexAddr(newReg(in.Dst), mapVal(in.Base), mapVal(in.Idx))
				ni.SetPos(in.Pos())
				nb.Append(ni)
			case *ir.Call:
				var dst *ir.Register
				if in.Dst != nil {
					dst = newReg(in.Dst)
				}
				args := make([]ir.Value, len(in.Args))
				for i, a := range in.Args {
					args[i] = mapVal(a)
				}
				ncall := ir.NewCall(dst, mapVal(in.Callee), args, in.Builtin)
				ncall.SetPos(in.Pos())
				nb.Append(ncall)
			case *ir.Ret:
				retVals = append(retVals, mapVal(in.Val))
				retBlocks = append(retBlocks, nb)
				nj := ir.NewJump(post)
				nj.SetPos(in.Pos())
				nb.Append(nj)
			case *ir.Jump:
				nj := ir.NewJump(bmap[in.Target])
				nj.SetPos(in.Pos())
				nb.Append(nj)
			case *ir.Branch:
				nbr := ir.NewBranch(mapVal(in.Cond), bmap[in.Then], bmap[in.Else])
				nbr.SetPos(in.Pos())
				nb.Append(nbr)
			case *ir.Phi:
				vals := make([]ir.Value, len(in.Vals))
				preds := make([]*ir.Block, len(in.Preds))
				for i := range in.Vals {
					vals[i] = mapVal(in.Vals[i])
					preds[i] = bmap[in.Preds[i]]
				}
				np := ir.NewPhi(newReg(in.Dst), vals, preds)
				np.SetPos(in.Pos())
				nb.Append(np)
			}
		}
	}
	// Fix phi operands cloned before their sources: mapVal resolved lazily
	// above only for already-mapped values, so run a second pass.
	for _, b := range callee.Blocks {
		nb := bmap[b]
		for _, in := range nb.Instrs {
			remapOperands(in, vmap)
		}
	}
	for _, in := range post.Instrs {
		remapOperands(in, vmap)
	}

	// Return values cloned before their defining instruction was mapped
	// still reference callee registers; resolve them now.
	for i := range retVals {
		v := retVals[i]
		for {
			m, ok := vmap[v]
			if !ok || m == v {
				break
			}
			v = m
		}
		retVals[i] = v
	}

	// Bind the call result.
	if call.Dst != nil {
		switch len(retVals) {
		case 0:
			// The callee never returns; post is unreachable but the
			// register still needs a definition.
			post.InsertFront(ir.NewCopy(call.Dst, ir.IntConst(0)))
		case 1:
			post.InsertFront(ir.NewCopy(call.Dst, retVals[0]))
		default:
			post.InsertFront(ir.NewPhi(call.Dst, retVals, retBlocks))
		}
	}
}

// remapOperands rewrites register operands through vmap (one level).
func remapOperands(in ir.Instr, vmap map[ir.Value]ir.Value) {
	res := func(v ir.Value) ir.Value {
		for {
			m, ok := vmap[v]
			if !ok || m == v {
				return v
			}
			v = m
		}
	}
	switch in := in.(type) {
	case *ir.Alloc:
		if in.DynSize != nil {
			in.DynSize = res(in.DynSize)
		}
	case *ir.Copy:
		in.Src = res(in.Src)
	case *ir.BinOp:
		in.X, in.Y = res(in.X), res(in.Y)
	case *ir.Load:
		in.Addr = res(in.Addr)
	case *ir.Store:
		in.Addr, in.Val = res(in.Addr), res(in.Val)
	case *ir.MemSet:
		in.To, in.Val, in.Len = res(in.To), res(in.Val), res(in.Len)
	case *ir.MemCopy:
		in.To, in.From, in.Len = res(in.To), res(in.From), res(in.Len)
	case *ir.FieldAddr:
		in.Base = res(in.Base)
	case *ir.IndexAddr:
		in.Base, in.Idx = res(in.Base), res(in.Idx)
	case *ir.Call:
		if in.Callee != nil {
			in.Callee = res(in.Callee)
		}
		for i := range in.Args {
			in.Args[i] = res(in.Args[i])
		}
	case *ir.Ret:
		if in.Val != nil {
			in.Val = res(in.Val)
		}
	case *ir.Branch:
		in.Cond = res(in.Cond)
	case *ir.Phi:
		for i := range in.Vals {
			in.Vals[i] = res(in.Vals[i])
		}
	}
}
