package randprog_test

import (
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/interp"
	"github.com/valueflow/usher/internal/randprog"
)

func TestDeterministic(t *testing.T) {
	a := randprog.Generate(42, randprog.DefaultOptions)
	b := randprog.Generate(42, randprog.DefaultOptions)
	if a != b {
		t.Fatal("generation is not deterministic")
	}
}

// TestSeedsCompileAndTerminate checks that a wide seed range produces
// well-formed programs that execute without traps and within budget.
func TestSeedsCompileAndTerminate(t *testing.T) {
	n := int64(500)
	if testing.Short() {
		n = 100
	}
	for seed := int64(0); seed < n; seed++ {
		src := randprog.Generate(seed, randprog.DefaultOptions)
		prog, err := compile.Source("rand.c", src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if _, err := interp.Run(prog, "main", nil, interp.Options{MaxSteps: 2_000_000}); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

// TestGeneratesUndefinedUses confirms the generator actually produces
// programs with real bugs sometimes — otherwise the soundness properties
// would be vacuous.
func TestGeneratesUndefinedUses(t *testing.T) {
	buggy := 0
	for seed := int64(0); seed < 100; seed++ {
		src := randprog.Generate(seed, randprog.DefaultOptions)
		prog, err := compile.Source("rand.c", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := interp.Run(prog, "main", nil, interp.Options{MaxSteps: 2_000_000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.OracleWarnings) > 0 {
			buggy++
		}
	}
	if buggy < 10 {
		t.Errorf("only %d/100 seeds produced undefined uses; properties are near-vacuous", buggy)
	}
	if buggy > 95 {
		t.Errorf("%d/100 seeds buggy; clean-program properties are near-vacuous", buggy)
	}
}
