package randprog_test

import (
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/interp"
	"github.com/valueflow/usher/internal/randprog"
)

func TestDeterministic(t *testing.T) {
	a := randprog.Generate(42, randprog.DefaultOptions)
	b := randprog.Generate(42, randprog.DefaultOptions)
	if a != b {
		t.Fatal("generation is not deterministic")
	}
}

// TestSeedsCompileAndTerminate checks that a wide seed range produces
// well-formed programs that execute without traps and within budget.
func TestSeedsCompileAndTerminate(t *testing.T) {
	n := int64(500)
	if testing.Short() {
		n = 100
	}
	for seed := int64(0); seed < n; seed++ {
		src := randprog.Generate(seed, randprog.DefaultOptions)
		prog, err := compile.Source("rand.c", src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if _, err := interp.Run(prog, "main", nil, interp.Options{MaxSteps: 2_000_000}); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

// TestGeneratesUndefinedUses confirms the generator actually produces
// programs with real bugs sometimes — otherwise the soundness properties
// would be vacuous.
func TestGeneratesUndefinedUses(t *testing.T) {
	buggy := 0
	for seed := int64(0); seed < 100; seed++ {
		src := randprog.Generate(seed, randprog.DefaultOptions)
		prog, err := compile.Source("rand.c", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := interp.Run(prog, "main", nil, interp.Options{MaxSteps: 2_000_000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.OracleWarnings) > 0 {
			buggy++
		}
	}
	if buggy < 10 {
		t.Errorf("only %d/100 seeds produced undefined uses; properties are near-vacuous", buggy)
	}
	if buggy > 95 {
		t.Errorf("%d/100 seeds buggy; clean-program properties are near-vacuous", buggy)
	}
}

// TestCleanLabelTrustworthy pins the implied ground-truth labeling: a
// program labeled Clean — no uninitialized locals, no malloc'd blocks —
// must run natively without traps and with an empty oracle. The converse
// is deliberately not asserted (an uninitialized local may go unread),
// so only the Clean direction may be relied upon by tests and by the
// differential harness.
func TestCleanLabelTrustworthy(t *testing.T) {
	n := int64(2000)
	if testing.Short() {
		n = 300
	}
	clean := 0
	for seed := int64(0); seed < n; seed++ {
		src, info := randprog.GenerateInfo(seed, randprog.DefaultOptions)
		if !info.Clean() {
			continue
		}
		clean++
		prog, err := compile.Source("rand.c", src)
		if err != nil {
			t.Fatalf("seed %d: clean program does not compile: %v\n%s", seed, err, src)
		}
		res, err := interp.Run(prog, "main", nil, interp.Options{MaxSteps: 2_000_000})
		if err != nil {
			t.Fatalf("seed %d: clean program trapped: %v\n%s", seed, err, src)
		}
		if len(res.OracleWarnings) != 0 {
			t.Fatalf("seed %d: clean program warned: %v\n%s", seed, res.OracleWarnings[0], src)
		}
	}
	if clean == 0 {
		t.Fatal("no clean programs generated; the Clean property is vacuous")
	}
}

// TestUninitUsesReachable checks that the generator's forced tail reads
// make a healthy fraction of non-clean programs actually reach an
// undefined use: without reachability the differential campaign would
// mostly compare empty warning sets.
func TestUninitUsesReachable(t *testing.T) {
	nonClean, warned := 0, 0
	for seed := int64(0); seed < 400; seed++ {
		src, info := randprog.GenerateInfo(seed, randprog.DefaultOptions)
		if info.Clean() {
			continue
		}
		nonClean++
		prog, err := compile.Source("rand.c", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := interp.Run(prog, "main", nil, interp.Options{MaxSteps: 2_000_000})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if len(res.OracleWarnings) > 0 {
			warned++
		}
	}
	if nonClean == 0 {
		t.Fatal("no non-clean programs generated")
	}
	if frac := float64(warned) / float64(nonClean); frac < 0.15 {
		t.Errorf("only %d/%d (%.0f%%) non-clean programs reach an undefined use; generator bugs are mostly dead code",
			warned, nonClean, frac*100)
	}
}
