// Package randprog generates random, well-formed, terminating MiniC
// programs for property-based testing of the whole pipeline.
//
// Programs deliberately may contain real uses of undefined values: locals
// declared without initialization, partially initialized heap blocks and
// conditionally assigned variables. The soundness properties under test
// (see the property tests in internal/instrument and the root package)
// compare each configuration's reports against the interpreter's
// ground-truth oracle.
//
// The generator avoids everything that would trap the interpreter rather
// than produce a definedness verdict: indices are masked to power-of-two
// bounds, division is excluded, frees are omitted, helper calls form a
// DAG, and all loops have small constant trip counts.
package randprog

import (
	"fmt"
	"math/rand"
	"strings"
)

// Options bounds the generated program.
type Options struct {
	// Helpers is the number of helper functions (callable in DAG order).
	Helpers int
	// StmtsPerFunc bounds the statements per function body.
	StmtsPerFunc int
	// MaxDepth bounds statement nesting.
	MaxDepth int
	// UninitFrac is the probability a local is declared uninitialized.
	UninitFrac float64
}

// DefaultOptions are suitable for fast fuzz rounds.
var DefaultOptions = Options{Helpers: 3, StmtsPerFunc: 8, MaxDepth: 3, UninitFrac: 0.3}

// Info is the implied ground-truth labeling of a generated program: what
// the generator knows about the definedness of the values it created.
//
// The labeling is deliberately one-sided. Clean is a guarantee — a clean
// program must execute without traps and with an empty oracle — whereas
// a non-clean program only *may* warn: an uninitialized local can go
// unread, and an undefined heap cell can sit outside every masked index
// the program happens to compute. Tests must therefore only assert the
// Clean direction (see TestCleanLabelTrustworthy).
type Info struct {
	// UninitLocals counts locals declared without an initializer.
	UninitLocals int
	// MallocBlocks counts heap blocks allocated with malloc. Their cells
	// start undefined, and the generator's partial-initialization loop
	// never provably covers all eight cells, so each such block is a
	// potential source of undefined reads.
	MallocBlocks int
	// StructSources counts struct values created with at least one
	// possibly-undefined field: uninitialized struct locals and mkPart
	// results, which copy their holes along by-value assignment.
	StructSources int
	// UninitCharArrays counts char arrays declared without a string
	// initializer; their cells start undefined.
	UninitCharArrays int
	// VarargUnderfeeds counts variadic calls that read more arguments
	// than were passed (each reads an undefined vararg slot).
	VarargUnderfeeds int
}

// Clean reports whether the program provably contains no undefined
// value: every local is initialized and every heap block is calloc'd
// (zero-initialized). A clean program's native run must produce an empty
// oracle; any warning or trap on a clean program is a generator bug.
func (i Info) Clean() bool {
	return i.UninitLocals == 0 && i.MallocBlocks == 0 &&
		i.StructSources == 0 && i.UninitCharArrays == 0 && i.VarargUnderfeeds == 0
}

// Generate produces a program from the seed.
func Generate(seed int64, opts Options) string {
	src, _ := GenerateInfo(seed, opts)
	return src
}

// GenerateInfo produces a program from the seed together with its
// implied ground-truth labeling.
func GenerateInfo(seed int64, opts Options) (string, Info) {
	g := &rgen{rng: rand.New(rand.NewSource(seed)), opts: opts,
		loopVars: make(map[string]bool), uninit: make(map[string]bool),
		structUninit: make(map[string]bool)}
	src := g.program()
	return src, g.info
}

type rgen struct {
	rng  *rand.Rand
	opts Options
	b    strings.Builder
	info Info

	// per-function state
	ints    []string // int-typed variables in scope
	ptrs    []string // int*-typed variables in scope
	structs []string // struct S variables in scope
	chars   []string // char[8] arrays in scope
	// structUninit marks struct variables that may still hold an
	// undefined field (declared bare, or assigned from mkPart or from
	// another possibly-undefined struct).
	structUninit map[string]bool
	// loopVars marks variables that must never be written (assigning to a
	// loop counter could make the loop diverge).
	loopVars map[string]bool
	// uninit tracks locals declared without an initializer and not since
	// overwritten by a plain assignment. Function tails read one of them
	// with some probability, so a generated bug is usually *reachable*
	// rather than dead code (compound assignments x += e keep x undefined
	// and therefore stay in the set).
	uninit  map[string]bool
	nextVar int
	depth   int
	helpers int // number of helpers callable from the current function
}

func (g *rgen) pf(format string, args ...any) { fmt.Fprintf(&g.b, format, args...) }

func (g *rgen) indent() string { return strings.Repeat("  ", g.depth+1) }

func (g *rgen) fresh(prefix string) string {
	g.nextVar++
	return fmt.Sprintf("%s%d", prefix, g.nextVar)
}

func (g *rgen) pickInt() string {
	if len(g.ints) == 0 {
		return fmt.Sprintf("%d", g.rng.Intn(16))
	}
	return g.ints[g.rng.Intn(len(g.ints))]
}

// pickAssignable returns a writable int variable in scope.
func (g *rgen) pickAssignable() (string, bool) {
	var cands []string
	for _, v := range g.ints {
		if !g.loopVars[v] {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	return cands[g.rng.Intn(len(cands))], true
}

func (g *rgen) pickPtr() (string, bool) {
	if len(g.ptrs) == 0 {
		return "", false
	}
	return g.ptrs[g.rng.Intn(len(g.ptrs))], true
}

// pickBuf returns any 8-cell buffer in scope: a heap block or a char
// array (both index safely under an &7 mask and feed the intrinsics).
func (g *rgen) pickBuf() (string, bool) {
	n := len(g.ptrs) + len(g.chars)
	if n == 0 {
		return "", false
	}
	i := g.rng.Intn(n)
	if i < len(g.ptrs) {
		return g.ptrs[i], true
	}
	return g.chars[i-len(g.ptrs)], true
}

var structFields = []string{"a", "b", "c"}

func (g *rgen) pickField() string { return structFields[g.rng.Intn(len(structFields))] }

// randString yields a quoted string literal of length 0..7 (it always
// fits, with its NUL, in a char[8]).
func (g *rgen) randString() string {
	n := g.rng.Intn(8)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(byte('a' + g.rng.Intn(26)))
	}
	return sb.String()
}

var randOps = []string{"+", "-", "*", "&", "|", "^", "<<"}
var cmpOps = []string{"<", ">", "<=", ">=", "==", "!="}

// expr yields an int-valued expression over in-scope variables.
func (g *rgen) expr(depth int) string {
	switch {
	case depth <= 0 || g.rng.Intn(3) == 0:
		if g.rng.Intn(2) == 0 {
			return g.pickInt()
		}
		return fmt.Sprintf("%d", g.rng.Intn(32))
	case g.rng.Intn(6) == 0:
		if b, ok := g.pickBuf(); ok {
			// Masked buffer read: always within the 8-cell block/array.
			return fmt.Sprintf("%s[%s & 7]", b, g.expr(0))
		}
		fallthrough
	default:
		op := randOps[g.rng.Intn(len(randOps))]
		lhs, rhs := g.expr(depth-1), g.expr(depth-1)
		if op == "<<" {
			rhs = fmt.Sprintf("(%s & 3)", rhs)
		}
		return fmt.Sprintf("(%s %s %s)", lhs, op, rhs)
	}
}

func (g *rgen) cond() string {
	return fmt.Sprintf("%s %s %s", g.expr(1), cmpOps[g.rng.Intn(len(cmpOps))], g.expr(1))
}

func (g *rgen) stmt() {
	ind := g.indent()
	switch g.rng.Intn(14) {
	case 0: // new local, possibly uninitialized
		v := g.fresh("x")
		if g.rng.Float64() < g.opts.UninitFrac {
			g.pf("%sint %s;\n", ind, v)
			g.info.UninitLocals++
			g.uninit[v] = true
		} else {
			g.pf("%sint %s = %s;\n", ind, v, g.expr(2))
		}
		g.ints = append(g.ints, v)
	case 1: // new heap block (8 cells, malloc or calloc)
		p := g.fresh("p")
		alloc := "malloc"
		if g.rng.Intn(2) == 0 {
			alloc = "calloc"
		} else {
			g.info.MallocBlocks++
		}
		g.pf("%sint *%s = %s(8);\n", ind, p, alloc)
		if g.rng.Intn(2) == 0 {
			// Partially initialize.
			n := 1 + g.rng.Intn(7)
			g.pf("%sfor (int i = 0; i < %d; i++) { %s[i] = %s; }\n", ind, n, p, g.expr(1))
		}
		g.ptrs = append(g.ptrs, p)
	case 2: // assignment to existing int
		if v, ok := g.pickAssignable(); ok {
			g.pf("%s%s = %s;\n", ind, v, g.expr(2))
			delete(g.uninit, v)
		}
	case 3: // store through pointer
		if p, ok := g.pickPtr(); ok {
			g.pf("%s%s[%s & 7] = %s;\n", ind, p, g.expr(0), g.expr(2))
		}
	case 4: // if / if-else
		if g.depth < g.opts.MaxDepth {
			g.pf("%sif (%s) {\n", ind, g.cond())
			g.block(1 + g.rng.Intn(2))
			if g.rng.Intn(2) == 0 {
				g.pf("%s} else {\n", ind)
				g.block(1 + g.rng.Intn(2))
			}
			g.pf("%s}\n", ind)
		}
	case 5: // bounded loop
		if g.depth < g.opts.MaxDepth {
			i := g.fresh("i")
			g.pf("%sfor (int %s = 0; %s < %d; %s++) {\n", ind, i, i, 2+g.rng.Intn(5), i)
			g.ints = append(g.ints, i)
			g.loopVars[i] = true
			g.block(1 + g.rng.Intn(2))
			// The loop variable's scope ends with the loop.
			g.ints = g.ints[:len(g.ints)-1]
			delete(g.loopVars, i)
			g.pf("%s}\n", ind)
		}
	case 6: // print (critical use)
		g.pf("%sprint(%s);\n", ind, g.expr(1))
	case 7: // helper call
		if g.helpers > 0 {
			h := g.rng.Intn(g.helpers)
			v := g.fresh("h")
			g.pf("%sint %s = helper%d(%s, %s);\n", ind, v, h, g.expr(1), g.expr(1))
			g.ints = append(g.ints, v)
		}
	case 8: // address-of local through a callee (defined store down the stack)
		if v, ok := g.pickAssignable(); ok && g.helpers > 0 {
			g.pf("%ssetvia(&%s, %s);\n", ind, v, g.expr(1))
			delete(g.uninit, v)
		}
	case 9: // accumulate into an int
		if v, ok := g.pickAssignable(); ok {
			g.pf("%s%s += %s;\n", ind, v, g.expr(1))
		}
	case 10: // new struct local (bare, partial or fully made)
		v := g.fresh("s")
		switch {
		case g.rng.Float64() < g.opts.UninitFrac:
			g.pf("%sstruct S %s;\n", ind, v)
			g.info.StructSources++
			g.structUninit[v] = true
		case g.rng.Intn(3) == 0:
			g.pf("%sstruct S %s = mkpart(%s);\n", ind, v, g.expr(1))
			g.info.StructSources++
			g.structUninit[v] = true
		default:
			g.pf("%sstruct S %s = mks(%s, %s);\n", ind, v, g.expr(1), g.expr(1))
		}
		g.structs = append(g.structs, v)
	case 11: // struct-by-value traffic
		if len(g.structs) == 0 {
			return
		}
		s := g.structs[g.rng.Intn(len(g.structs))]
		switch g.rng.Intn(4) {
		case 0:
			g.pf("%s%s = mks(%s, %s);\n", ind, s, g.expr(1), g.expr(1))
			delete(g.structUninit, s)
		case 1: // whole-value copy propagates any undefined field
			t := g.structs[g.rng.Intn(len(g.structs))]
			g.pf("%s%s = %s;\n", ind, s, t)
			if g.structUninit[t] {
				g.structUninit[s] = true
			} else {
				delete(g.structUninit, s)
			}
		case 2:
			g.pf("%s%s.%s = %s;\n", ind, s, g.pickField(), g.expr(1))
		default:
			g.pf("%sprint(%s.%s);\n", ind, s, g.pickField())
		}
	case 12: // new char array, string-initialized or undefined
		v := g.fresh("c")
		if g.rng.Float64() < g.opts.UninitFrac {
			g.pf("%schar %s[8];\n", ind, v)
			g.info.UninitCharArrays++
		} else {
			g.pf("%schar %s[8] = %q;\n", ind, v, g.randString())
		}
		g.chars = append(g.chars, v)
	default: // memory intrinsics and variadic calls
		switch g.rng.Intn(4) {
		case 0: // masked-range fill; the fill value may itself be undefined
			if b, ok := g.pickBuf(); ok {
				g.pf("%smemset(%s, %s, %s & 7);\n", ind, b, g.expr(1), g.expr(0))
			}
		case 1: // masked-range copy, possibly overlapping (memmove semantics)
			if dst, ok := g.pickBuf(); ok {
				if src, ok2 := g.pickBuf(); ok2 {
					op := "memcpy"
					if g.rng.Intn(2) == 0 {
						op = "memmove"
					}
					g.pf("%s%s(%s, %s, %s & 7);\n", ind, op, dst, src, g.expr(0))
				}
			}
		case 2: // variadic call fed exactly the arguments it reads
			k := 1 + g.rng.Intn(3)
			args := make([]string, k)
			for i := range args {
				args[i] = g.expr(1)
			}
			v := g.fresh("v")
			g.pf("%sint %s = vsum(%d, %s);\n", ind, v, k, strings.Join(args, ", "))
			g.ints = append(g.ints, v)
		default: // underfed variadic call: reads one undefined slot
			v := g.fresh("v")
			g.pf("%sint %s = vsum(1);\n", ind, v)
			g.info.VarargUnderfeeds++
			g.ints = append(g.ints, v)
		}
	}
}

// block emits n statements in a nested scope; declarations inside it go
// out of scope when it closes.
func (g *rgen) block(n int) {
	ints, ptrs := len(g.ints), len(g.ptrs)
	structs, chars := len(g.structs), len(g.chars)
	g.depth++
	for i := 0; i < n; i++ {
		g.stmt()
	}
	g.depth--
	g.ints = g.ints[:ints]
	g.ptrs = g.ptrs[:ptrs]
	// Names are fresh and never reused, so stale structUninit entries for
	// out-of-scope structs are harmless.
	g.structs = g.structs[:structs]
	g.chars = g.chars[:chars]
}

func (g *rgen) funcBody(params []string, stmts int) {
	saveInts, savePtrs, saveUninit := g.ints, g.ptrs, g.uninit
	saveStructs, saveChars, saveStructUninit := g.structs, g.chars, g.structUninit
	g.ints = append([]string(nil), params...)
	g.ptrs = nil
	g.uninit = make(map[string]bool)
	g.structs, g.chars = nil, nil
	g.structUninit = make(map[string]bool)
	for i := 0; i < stmts; i++ {
		g.stmt()
	}
	// Force a reachable critical use of a still-uninitialized local: the
	// function tail is on every executed path through the body, so the
	// generated bug is not dead code. Without this, most uninitialized
	// declarations were never read and non-clean programs rarely warned.
	if len(g.uninit) > 0 && g.rng.Intn(2) == 0 {
		var cands []string
		for _, v := range g.ints {
			if g.uninit[v] {
				cands = append(cands, v)
			}
		}
		if len(cands) > 0 {
			g.pf("  print(%s);\n", cands[g.rng.Intn(len(cands))])
		}
	}
	g.pf("  return %s;\n", g.expr(2))
	g.ints, g.ptrs, g.uninit = saveInts, savePtrs, saveUninit
	g.structs, g.chars, g.structUninit = saveStructs, saveChars, saveStructUninit
}

func (g *rgen) program() string {
	g.pf("// random program (property-testing input)\n")
	g.pf("int gacc;\n")
	g.pf("void setvia(int *p, int v) { *p = v; }\n\n")
	g.pf("struct S { int a; int b; int c; };\n\n")
	g.pf("struct S mks(int a, int b) { struct S s; s.a = a; s.b = b; s.c = a ^ b; return s; }\n\n")
	// mkpart leaves s.b and s.c undefined: a struct-by-value source of
	// partially-initialized values for the campaign.
	g.pf("struct S mkpart(int a) { struct S s; s.a = a; return s; }\n\n")
	g.pf("int vsum(int n, ...) {\n")
	g.pf("  int t = 0;\n")
	g.pf("  for (int i = 0; i < n; i++) { t += va_arg(i); }\n")
	g.pf("  return t;\n")
	g.pf("}\n\n")
	for h := 0; h < g.opts.Helpers; h++ {
		g.helpers = h // may call strictly earlier helpers: a DAG
		g.pf("int helper%d(int a, int b) {\n", h)
		g.funcBody([]string{"a", "b"}, 2+g.rng.Intn(g.opts.StmtsPerFunc/2))
		g.pf("}\n\n")
	}
	g.helpers = g.opts.Helpers
	g.pf("int main() {\n")
	g.funcBody(nil, g.opts.StmtsPerFunc)
	g.pf("}\n")
	return g.b.String()
}
