package usher_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/interp"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/randprog"
	"github.com/valueflow/usher/internal/ssa"
)

// runSeed compiles and executes one random program under every
// configuration, checking the soundness invariants of DESIGN.md. It
// returns an error describing the first violation.
func checkSeed(seed int64) error {
	src := randprog.Generate(seed, randprog.DefaultOptions)
	prog, err := usher.Compile("rand.c", src)
	if err != nil {
		return errseed(seed, "compile", err)
	}
	native, err := usher.RunNative(prog, usher.RunOptions{})
	if err != nil {
		// A runtime trap (e.g. masked index on a freed block) would be a
		// generator bug: surface it.
		return errseed(seed, "native run", err)
	}
	oracle := native.OracleSites()

	for _, cfg := range usher.Configs {
		an := usher.MustAnalyze(prog, cfg)
		res, err := an.Run(usher.RunOptions{})
		if err != nil {
			return errseed(seed, cfg.String()+" run", err)
		}
		if len(res.ShadowViolations) > 0 {
			return errseedf(seed, "%v: shadow violation: %s", cfg, res.ShadowViolations[0])
		}
		if res.Exit.Int != native.Exit.Int {
			return errseedf(seed, "%v: exit %d != native %d", cfg, res.Exit.Int, native.Exit.Int)
		}
		shadow := res.ShadowSites()
		for s := range shadow {
			if !oracle[s] {
				return errseedf(seed, "%v: false positive at %v", cfg, s)
			}
		}
		if cfg == usher.ConfigUsherFull {
			if len(oracle) > 0 && len(shadow) == 0 {
				return errseedf(seed, "%v: every oracle site suppressed (oracle has %d)", cfg, len(oracle))
			}
			continue
		}
		for s := range oracle {
			if !shadow[s] {
				return errseedf(seed, "%v: missed oracle site %v", cfg, s)
			}
		}
	}
	return nil
}

func errseed(seed int64, what string, err error) error {
	return fmt.Errorf("seed %d: %s: %w", seed, what, err)
}

func errseedf(seed int64, format string, args ...any) error {
	return errseed(seed, "property", fmt.Errorf(format, args...))
}

// TestPropertySoundnessRandomPrograms fuzzes the full pipeline over a
// fixed range of seeds: every configuration must report exactly the
// oracle's undefined-value uses (Opt II may suppress dominated duplicates
// but never everything), with no fabricated reports, no uninitialized
// shadow reads, and unchanged program semantics.
func TestPropertySoundnessRandomPrograms(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 25
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		if err := checkSeed(seed); err != nil {
			src := randprog.Generate(seed, randprog.DefaultOptions)
			t.Fatalf("%v\n--- program ---\n%s", err, src)
		}
	}
}

// TestPropertySSAInvariants uses testing/quick to check that every
// optimization level preserves SSA well-formedness and semantics on
// random programs.
func TestPropertySSAInvariants(t *testing.T) {
	property := func(seed int64) bool {
		seed &= 0xffff
		src := randprog.Generate(seed, randprog.DefaultOptions)
		base := compile.MustSource("rand.c", src)
		baseRes, err := interp.Run(base, "main", nil, interp.Options{})
		if err != nil {
			t.Logf("seed %d: native: %v", seed, err)
			return false
		}
		for _, level := range []passes.Level{passes.O0IM, passes.O1, passes.O2} {
			prog := compile.MustSource("rand.c", src)
			if err := passes.Apply(prog, level); err != nil {
				t.Logf("seed %d: %v: %v", seed, level, err)
				return false
			}
			if err := ssa.VerifySSA(prog); err != nil {
				t.Logf("seed %d: %v: SSA broken: %v", seed, level, err)
				return false
			}
			res, err := interp.Run(prog, "main", nil, interp.Options{})
			if err != nil {
				t.Logf("seed %d: %v run: %v", seed, level, err)
				return false
			}
			if res.Exit.Int != baseRes.Exit.Int {
				t.Logf("seed %d: %v: exit %d != %d", seed, level, res.Exit.Int, baseRes.Exit.Int)
				return false
			}
			if len(res.Out) != len(baseRes.Out) {
				t.Logf("seed %d: %v: output length changed", seed, level)
				return false
			}
			for i := range res.Out {
				if res.Out[i] != baseRes.Out[i] {
					t.Logf("seed %d: %v: output[%d] %d != %d", seed, level, i, res.Out[i], baseRes.Out[i])
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMonotoneStaticCounts checks invariant 5 on random programs:
// each configuration's static counts never exceed the previous one's.
func TestPropertyMonotoneStaticCounts(t *testing.T) {
	property := func(seed int64) bool {
		seed &= 0xffff
		src := randprog.Generate(seed, randprog.DefaultOptions)
		prog := compile.MustSource("rand.c", src)
		prevProps, prevChecks := -1, -1
		for _, cfg := range usher.Configs {
			st := usher.MustAnalyze(prog, cfg).StaticStats()
			if prevProps >= 0 && (st.Props > prevProps || st.Checks > prevChecks) {
				t.Logf("seed %d: %v has props=%d checks=%d after %d/%d",
					seed, cfg, st.Props, st.Checks, prevProps, prevChecks)
				return false
			}
			prevProps, prevChecks = st.Props, st.Checks
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLargeRandomPrograms stresses the pipeline with bigger generated
// programs (deeper nesting, more helpers) under the Usher configuration.
func TestLargeRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("large programs")
	}
	big := randprog.Options{Helpers: 8, StmtsPerFunc: 30, MaxDepth: 4, UninitFrac: 0.3}
	for seed := int64(0); seed < 20; seed++ {
		src := randprog.Generate(seed, big)
		prog, err := usher.Compile("big.c", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		native, err := usher.RunNative(prog, usher.RunOptions{})
		if err != nil {
			t.Fatalf("seed %d native: %v", seed, err)
		}
		an := usher.MustAnalyze(prog, usher.ConfigUsherFull)
		res, err := an.Run(usher.RunOptions{})
		if err != nil {
			t.Fatalf("seed %d usher: %v", seed, err)
		}
		if len(res.ShadowViolations) != 0 {
			t.Fatalf("seed %d violations: %v", seed, res.ShadowViolations)
		}
		oracle := native.OracleSites()
		for s := range res.ShadowSites() {
			if !oracle[s] {
				t.Fatalf("seed %d: false positive %v", seed, s)
			}
		}
		if len(oracle) > 0 && len(res.ShadowSites()) == 0 {
			t.Fatalf("seed %d: all reports suppressed", seed)
		}
	}
}
