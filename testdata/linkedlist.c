// Linked-list construction and traversal: the pointer-chasing pattern
// whose checks only the address-taken analysis can reduce.
struct Node { int val; struct Node *next; };

struct Node *push(struct Node *head, int v) {
  struct Node *n = malloc(sizeof(struct Node));
  n->val = v;
  n->next = head;
  return n;
}

int sum(struct Node *head) {
  int s = 0;
  while (head != 0) {
    s += head->val;
    head = head->next;
  }
  return s;
}

int main() {
  struct Node *head = 0;
  for (int i = 1; i <= 10; i++) { head = push(head, i); }
  print(sum(head));
  while (head != 0) {
    struct Node *nx = head->next;
    free(head);
    head = nx;
  }
  return 0;
}
