// Function-pointer state machine: the call-graph pattern the O0+IM
// inlining step targets.
int st_idle(int ev) { if (ev > 3) { return 1; } return 0; }
int st_run(int ev) { if (ev == 0) { return 0; } if (ev & 1) { return 2; } return 1; }
int st_done(int ev) { return 2; }

int step(int (*f)(int), int ev) { return f(ev); }

int main() {
  int (*states[3])(int);
  states[0] = st_idle;
  states[1] = st_run;
  states[2] = st_done;
  int s = 0;
  int visits = 0;
  for (int ev = 0; ev < 12; ev++) {
    s = step(states[s], ev);
    visits += s;
  }
  print(visits);
  return s;
}
