// A program with a real bug: `mode` is set only on one path but branched
// on unconditionally. Every configuration must report it.
int decide(int input) {
  int mode;
  if (input > 10) { mode = input * 2; }
  if (mode > 15) { return 1; }   // use of possibly-undefined mode
  return 0;
}

int main() {
  int hits = 0;
  for (int i = 0; i < 20; i++) { hits += decide(i); }
  print(hits);
  return 0;
}
