// Row-pointer matrix arithmetic: arrays of pointers, dynamic sizes.
int rowsum(int *row, int n) {
  int s = 0;
  for (int j = 0; j < n; j++) { s += row[j]; }
  return s;
}

int main() {
  int n = 6;
  int **m = malloc(n);
  for (int i = 0; i < n; i++) {
    m[i] = calloc(n);
    for (int j = 0; j < n; j++) { m[i][j] = i * n + j; }
  }
  int total = 0;
  for (int i = 0; i < n; i++) { total += rowsum(m[i], n); }
  print(total);
  for (int i = 0; i < n; i++) { free(m[i]); }
  free(m);
  return total & 255;
}
