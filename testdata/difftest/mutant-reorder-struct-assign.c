// sanitizer-vs-sanitizer corpus: reorder-struct-assign mutant. In the
// original program the field store preceded the whole-struct copy;
// swapped, t captures s before s.a is defined and the print warns.
struct S { int a; };
int main() {
  struct S s;
  struct S t;
  t = s;
  s.a = 1;
  print(t.a);
  return 0;
}
