// sanitizer-vs-sanitizer corpus: shrink-copy-length mutant. The copy
// length 4 was masked to 4 & 3 == 0, so d stays fully undefined and
// the print warns.
char lit[4] = "ab";
int main() {
  char d[4];
  memcpy(d, lit, 4 & 3);
  print(d[0]);
  return 0;
}
