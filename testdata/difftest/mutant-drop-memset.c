// sanitizer-vs-sanitizer corpus: drop-memset mutant. The memset that
// defined b became an empty statement; the print is a genuine use of
// an undefined value, and every configuration must agree with the
// oracle on it.
int main() {
  char b[4];
  ;
  print(b[1]);
  return 0;
}
