// sanitizer-vs-sanitizer corpus: route-through-varargs mutant. The
// initializer u was rewritten to vsum(1, u): the undefined shadow must
// survive the caller-side va array and the callee's va_arg load, and
// the print must still warn.
int vsum(int n, ...) {
  int t = 0;
  for (int i = 0; i < n; i++) { t += va_arg(i); }
  return t;
}
int main() {
  int u;
  int v = vsum(1, u);
  print(v);
  return 0;
}
