package usher_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/valueflow/usher/internal/bench"
)

// buildTool compiles one command into a temp dir and returns its path.
func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// TestUshercCLI exercises the usherc command end-to-end on the sample
// programs.
func TestUshercCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/usherc")

	// A clean program: compare mode must show a table and zero warnings.
	out, err := exec.Command(bin, "-compare", "testdata/linkedlist.c").CombinedOutput()
	if err != nil {
		t.Fatalf("usherc -compare: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"MSan", "Usher", "native", "overhead"} {
		if !strings.Contains(text, want) {
			t.Errorf("compare output missing %q:\n%s", want, text)
		}
	}

	// A buggy program: the default (usher) config must report it and the
	// process must still exit 0 (detection is a report, not a crash).
	out, err = exec.Command(bin, "testdata/uninit_bug.c").CombinedOutput()
	if err != nil {
		t.Fatalf("usherc on bug: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "use of undefined value") {
		t.Errorf("bug not reported:\n%s", out)
	}

	// Workload mode with source dump.
	out, err = exec.Command(bin, "-dump-src", "-workload", "mcf").CombinedOutput()
	if err != nil {
		t.Fatalf("usherc -dump-src: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "int kernel_0()") {
		t.Errorf("workload source not dumped:\n%.300s", out)
	}

	// Unknown config must fail.
	if out, err := exec.Command(bin, "-config", "bogus", "testdata/matrix.c").CombinedOutput(); err == nil {
		t.Errorf("bogus config accepted:\n%s", out)
	}
}

// TestVfgDumpCLI checks the dump tool produces its sections and valid
// DOT.
func TestVfgDumpCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/vfg-dump")
	out, err := exec.Command(bin, "-ir", "-pts", "-memssa", "-vfg", "testdata/linkedlist.c").CombinedOutput()
	if err != nil {
		t.Fatalf("vfg-dump: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"=== IR", "=== points-to", "=== memory SSA", "=== value-flow graph", "chi(", "mu("} {
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %q", want)
		}
	}
	out, err = exec.Command(bin, "-dot", "testdata/matrix.c").CombinedOutput()
	if err != nil {
		t.Fatalf("vfg-dump -dot: %v\n%s", err, out)
	}
	if !strings.HasPrefix(string(out), "digraph vfg {") || !strings.Contains(string(out), "->") {
		t.Errorf("not DOT output:\n%.200s", out)
	}
}

// TestUsherDifftestCLI runs a small differential campaign end-to-end
// and checks the JSON report is bit-identical across worker counts.
func TestUsherDifftestCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/usher-difftest")
	dir := t.TempDir()

	var blobs [][]byte
	for _, parallel := range []string{"1", "4"} {
		path := filepath.Join(dir, "report-p"+parallel+".json")
		out, err := exec.Command(bin, "-seeds", "25", "-parallel", parallel, "-json", path).CombinedOutput()
		if err != nil {
			t.Fatalf("usher-difftest -parallel %s: %v\n%s", parallel, err, out)
		}
		if !strings.Contains(string(out), "0 divergent") {
			t.Errorf("unexpected divergence:\n%s", out)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), fmt.Sprintf(`"schemaVersion": %d`, bench.SchemaVersion)) {
			t.Errorf("report missing schemaVersion:\n%.200s", data)
		}
		blobs = append(blobs, data)
	}
	if string(blobs[0]) != string(blobs[1]) {
		t.Errorf("JSON report differs between -parallel 1 and 4:\n%s\n----\n%s", blobs[0], blobs[1])
	}
}

// TestExamplesRun executes the fast example programs end to end.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tests := []struct {
		pkg  string
		args []string
		want string
	}{
		{"examples/quickstart", nil, "no uses of undefined values"},
		{"examples/bugdetect", nil, "1 warnings"},
		{"examples/semistrong", nil, "semi-strong cuts: 1"},
		{"examples/overheadstudy", []string{"art"}, "saved-vs-MSan"},
	}
	for _, tt := range tests {
		bin := buildTool(t, tt.pkg)
		out, err := exec.Command(bin, tt.args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", tt.pkg, err, out)
		}
		if !strings.Contains(string(out), tt.want) {
			t.Errorf("%s output missing %q:\n%s", tt.pkg, tt.want, out)
		}
	}
}
