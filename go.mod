module github.com/valueflow/usher

go 1.22
