package usher_test

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/randprog"
	"github.com/valueflow/usher/internal/vfgsum"
	"github.com/valueflow/usher/internal/workload"
)

// The Opt IV A/B harness: every test here analyzes the same source
// twice — once with the dense Γ resolver (the default) and once with
// summary-based resolution (vfgsum.Enabled) — and demands identical
// plans, definedness counts and optimization statistics for every
// extended configuration. The summary resolver is an acceleration, not
// an approximation; these tests are the contract that pins it.
//
// vfgsum.Enabled is process-global, so none of these tests run in
// parallel; each restores the flag before returning.

// gammaABCheck analyzes name twice, dense then summary-resolved, and
// compares the abResult essence under every extended configuration.
func gammaABCheck(t *testing.T, name, src string, level passes.Level) {
	t.Helper()
	denseProg := abCompile(t, name, src, level)
	sumProg := abCompile(t, name, src, level)
	defer func(old bool) { vfgsum.Enabled = old }(vfgsum.Enabled)

	vfgsum.Enabled = false
	dense := usher.NewSession(denseProg)
	want := make(map[usher.Config]abResult, len(usher.ExtendedConfigs))
	for _, cfg := range usher.ExtendedConfigs {
		a, err := dense.Analyze(cfg)
		if err != nil {
			t.Fatalf("%s/%s: dense analyze: %v", name, cfg, err)
		}
		want[cfg] = summarize(a)
	}

	vfgsum.Enabled = true
	sum := usher.NewSession(sumProg)
	for _, cfg := range usher.ExtendedConfigs {
		a, err := sum.Analyze(cfg)
		if err != nil {
			t.Fatalf("%s/%s: summary analyze: %v", name, cfg, err)
		}
		if got := summarize(a); got != want[cfg] {
			t.Errorf("%s/%s: summary resolution diverges from dense:\ndense:   %+v\nsummary: %+v", name, cfg, want[cfg], got)
		}
	}
}

// TestGammaSummariesABCorpus covers the hand-written example corpus,
// including the dynamic warning sites: identical plans must yield
// identical interpreter warnings.
func TestGammaSummariesABCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/*.c")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	defer func(old bool) { vfgsum.Enabled = old }(vfgsum.Enabled)
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src := readFile(t, file)
			gammaABCheck(t, file, src, passes.O0IM)

			// Dynamic A/B: run both flows' plans and compare warning sites.
			vfgsum.Enabled = false
			dense := usher.NewSession(abCompile(t, file, src, passes.O0IM))
			denseWarnings := make(map[usher.Config]any, len(usher.ExtendedConfigs))
			for _, cfg := range usher.ExtendedConfigs {
				res, err := dense.MustAnalyze(cfg).Run(usher.RunOptions{})
				if err != nil {
					t.Fatalf("%s: dense run: %v", cfg, err)
				}
				denseWarnings[cfg] = res.ShadowWarnings
			}
			vfgsum.Enabled = true
			sum := usher.NewSession(abCompile(t, file, src, passes.O0IM))
			for _, cfg := range usher.ExtendedConfigs {
				res, err := sum.MustAnalyze(cfg).Run(usher.RunOptions{})
				if err != nil {
					t.Fatalf("%s: summary run: %v", cfg, err)
				}
				if !reflect.DeepEqual(denseWarnings[cfg], res.ShadowWarnings) {
					t.Errorf("%s: warning sites diverge:\ndense:   %v\nsummary: %v", cfg, denseWarnings[cfg], res.ShadowWarnings)
				}
			}
		})
	}
}

// TestGammaSummariesABWorkloads covers the synthetic SPEC2000 stand-in
// profiles under O0+IM.
func TestGammaSummariesABWorkloads(t *testing.T) {
	profiles := workload.Profiles
	if testing.Short() {
		profiles = profiles[:3]
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			gammaABCheck(t, p.Name+".c", workload.Generate(p), passes.O0IM)
		})
	}
}

// TestGammaSummariesABRandom sweeps generated programs through both
// resolvers.
func TestGammaSummariesABRandom(t *testing.T) {
	seeds := 500
	if testing.Short() {
		seeds = 50
	}
	for seed := 0; seed < seeds; seed++ {
		src := randprog.Generate(int64(seed), randprog.DefaultOptions)
		name := fmt.Sprintf("seed%d.c", seed)
		if _, err := usher.Compile(name, src); err != nil {
			continue // generator can emit ill-typed programs; not this test's concern
		}
		gammaABCheck(t, name, src, passes.O0IM)
	}
}

// TestGammaSummariesWorkerDeterminism pins the parallel-resolution
// contract end to end: with summary resolution enabled, prewarming all
// resolution artifacts at any worker count — and building the
// condensation itself at any worker count — yields bit-identical Γs
// and plans.
func TestGammaSummariesWorkerDeterminism(t *testing.T) {
	p, ok := workload.ByName("equake")
	if !ok {
		t.Fatal("no workload equake")
	}
	src := workload.Generate(p)
	defer func(e bool, w int) { vfgsum.Enabled, vfgsum.Workers = e, w }(vfgsum.Enabled, vfgsum.Workers)
	vfgsum.Enabled = true

	type essence struct {
		bottomFull string
		bottomTL   string
		results    map[usher.Config]abResult
	}
	at := func(workers int) essence {
		vfgsum.Workers = workers
		sess := usher.NewSession(abCompile(t, p.Name+".c", src, passes.O0IM))
		if err := sess.PrewarmResolve(workers); err != nil {
			t.Fatalf("workers=%d: prewarm: %v", workers, err)
		}
		es := essence{results: make(map[usher.Config]abResult)}
		for _, tl := range []bool{false, true} {
			_, gm, err := sess.Graph(tl)
			if err != nil {
				t.Fatalf("workers=%d: graph: %v", workers, err)
			}
			s := fmt.Sprintf("%v", gm.BottomBits().Words())
			if tl {
				es.bottomTL = s
			} else {
				es.bottomFull = s
			}
		}
		for _, cfg := range usher.ExtendedConfigs {
			a, err := sess.Analyze(cfg)
			if err != nil {
				t.Fatalf("workers=%d/%s: %v", workers, cfg, err)
			}
			es.results[cfg] = summarize(a)
		}
		return es
	}

	base := at(1)
	for _, w := range []int{2, 4, 8} {
		got := at(w)
		if got.bottomFull != base.bottomFull || got.bottomTL != base.bottomTL {
			t.Errorf("workers=%d: Γ bit vectors diverge from workers=1", w)
		}
		if !reflect.DeepEqual(got.results, base.results) {
			t.Errorf("workers=%d: analysis results diverge from workers=1", w)
		}
	}
}
