package usher_test

import (
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/workload"
)

// TestCompileAndAnalyzeDeterministic compiles and analyzes the same
// source twice and requires identical instrumentation plans. Register
// numbering, phi placement order and plan emission must all be
// run-to-run deterministic, or the -parallel N / -parallel 1 output
// equivalence guarantee of usher-bench is meaningless.
func TestCompileAndAnalyzeDeterministic(t *testing.T) {
	fp := func() string {
		p, ok := workload.ByName("equake")
		if !ok {
			t.Fatal("no workload equake")
		}
		src := workload.Generate(p)
		prog, err := usher.Compile(p.Name+".c", src)
		if err != nil {
			t.Fatal(err)
		}
		if err := passes.Apply(prog, passes.O0IM); err != nil {
			t.Fatal(err)
		}
		return usher.MustAnalyze(prog, usher.ConfigUsherFull).Plan.Fingerprint()
	}
	a, b := fp(), fp()
	if a != b {
		t.Fatalf("two compilations of the same source produced different plans:\n%s\n---\n%s", a, b)
	}
}
