package usher_test

import (
	"reflect"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/stats"
	"github.com/valueflow/usher/internal/workload"
)

// TestCompileAndAnalyzeDeterministic compiles and analyzes the same
// source twice and requires identical instrumentation plans. Register
// numbering, phi placement order and plan emission must all be
// run-to-run deterministic, or the -parallel N / -parallel 1 output
// equivalence guarantee of usher-bench is meaningless.
func TestCompileAndAnalyzeDeterministic(t *testing.T) {
	fp := func() string {
		p, ok := workload.ByName("equake")
		if !ok {
			t.Fatal("no workload equake")
		}
		src := workload.Generate(p)
		prog, err := usher.Compile(p.Name+".c", src)
		if err != nil {
			t.Fatal(err)
		}
		if err := passes.Apply(prog, passes.O0IM); err != nil {
			t.Fatal(err)
		}
		return usher.MustAnalyze(prog, usher.ConfigUsherFull).Plan.Fingerprint()
	}
	a, b := fp(), fp()
	if a != b {
		t.Fatalf("two compilations of the same source produced different plans:\n%s\n---\n%s", a, b)
	}
}

// TestSolverWorkersDeterministic extends the determinism contract to
// the parallel solver: the whole pipeline's deterministic stats fields
// (pass runs and work counters — wall time and allocations scrubbed)
// and the emitted plans must be bit-identical at ANY -solver-workers
// value, including the classic sequential solver (workers=0). This is
// what lets usher-bench document results without recording the worker
// count they were solved with.
func TestSolverWorkersDeterministic(t *testing.T) {
	p, ok := workload.ByName("equake")
	if !ok {
		t.Fatal("no workload equake")
	}
	src := workload.Generate(p)
	pipelineAt := func(workers int) ([]stats.PassStats, string) {
		prev := pointer.Workers
		pointer.Workers = workers
		defer func() { pointer.Workers = prev }()
		prog, err := usher.Compile(p.Name+".c", src)
		if err != nil {
			t.Fatal(err)
		}
		if err := passes.Apply(prog, passes.O0IM); err != nil {
			t.Fatal(err)
		}
		sc := stats.New()
		sess := usher.NewSessionObserved(prog, sc)
		as, err := sess.AnalyzeAll(usher.ExtendedConfigs)
		if err != nil {
			t.Fatal(err)
		}
		fps := ""
		for _, a := range as {
			fps += a.Plan.Fingerprint()
		}
		return stats.Scrub(sc.Snapshot()), fps
	}
	baseStats, baseFPs := pipelineAt(0)
	for _, w := range []int{1, 2, 4, 8} {
		st, fps := pipelineAt(w)
		if fps != baseFPs {
			t.Errorf("workers=%d: plan fingerprints diverge from sequential", w)
		}
		if !reflect.DeepEqual(st, baseStats) {
			t.Errorf("workers=%d: scrubbed pass stats diverge from sequential:\n got %+v\nwant %+v",
				w, st, baseStats)
		}
	}
}
