package usher_test

import (
	"strings"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/diag"
)

// TestCompileErrors pins the frontend error contract: malformed input
// comes back from Compile as positioned diagnostics — never a panic and
// never a bare unpositioned error. Each case names the phase that must
// report it and a substring of the expected message.
func TestCompileErrors(t *testing.T) {
	tests := []struct {
		name  string
		src   string
		phase diag.Phase
		want  string
		line  int
		col   int
	}{
		{
			name:  "unterminated block comment",
			src:   "int main(void) { /* unterminated",
			phase: diag.PhaseLex,
			want:  "unterminated block comment",
			line:  1, col: 18,
		},
		{
			name:  "illegal character",
			src:   "int main(void) { int x = 1 $ 2; return x; }",
			phase: diag.PhaseLex,
			want:  "illegal character '$'",
			line:  1, col: 28,
		},
		{
			name:  "assignment to non-lvalue",
			src:   "int main(void) { 3 = 4; return 0; }",
			phase: diag.PhaseType,
			want:  "cannot assign to this expression",
			line:  1, col: 18,
		},
		{
			name:  "call of undefined function",
			src:   "int main(void) { return frobnicate(1); }",
			phase: diag.PhaseType,
			want:  "undefined: frobnicate",
			line:  1, col: 25,
		},
		{
			name:  "builtin arity mismatch",
			src:   "int main(void) { print(1, 2); return 0; }",
			phase: diag.PhaseType,
			want:  "wrong number of arguments: got 2, want 1",
			line:  1, col: 23,
		},
		{
			name:  "builtin used as a value",
			src:   "int main(void) { void (*p)(int); p = print; return 0; }",
			phase: diag.PhaseType,
			want:  "builtin print can only be called",
			line:  1, col: 38,
		},
		{
			name:  "duplicate function definition",
			src:   "int f(void) { return 1; } int f(void) { return 2; } int main(void) { return f(); }",
			phase: diag.PhaseType,
			want:  "redefinition of f",
			line:  1, col: 32,
		},
		{
			name:  "nesting depth limit",
			src:   "int main(void) { return " + strings.Repeat("(", 3000) + "1" + strings.Repeat(")", 3000) + "; }",
			phase: diag.PhaseParse,
			want:  "nesting too deep",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			prog, err := usher.Compile("t.c", tt.src)
			if err == nil {
				t.Fatal("Compile succeeded, want an error")
			}
			if prog != nil {
				t.Error("Compile returned both a program and an error")
			}
			diags := diag.All(err)
			if len(diags) == 0 {
				t.Fatalf("error carries no diagnostics: %v", err)
			}
			var hit *diag.Diagnostic
			for _, d := range diags {
				if strings.Contains(d.Msg, tt.want) {
					hit = d
					break
				}
			}
			if hit == nil {
				t.Fatalf("no diagnostic contains %q; got:\n%v", tt.want, err)
			}
			if hit.Phase != tt.phase {
				t.Errorf("phase = %q, want %q", hit.Phase, tt.phase)
			}
			if hit.Pos.File != "t.c" || hit.Pos.Line == 0 {
				t.Errorf("diagnostic not positioned: %s", hit)
			}
			if tt.line != 0 && (hit.Pos.Line != tt.line || hit.Pos.Col != tt.col) {
				t.Errorf("pos = %d:%d, want %d:%d", hit.Pos.Line, hit.Pos.Col, tt.line, tt.col)
			}
		})
	}
}

// TestCompileReportsAllErrorsInOrder checks that a source with several
// independent mistakes reports every one of them, sorted by source
// position, rather than stopping at the first.
func TestCompileReportsAllErrorsInOrder(t *testing.T) {
	src := "int main(void) {\n" +
		"\t3 = 4;\n" +
		"\tprint(1, 2);\n" +
		"\treturn frobnicate(1);\n" +
		"}\n"
	_, err := usher.Compile("t.c", src)
	if err == nil {
		t.Fatal("Compile succeeded, want errors")
	}
	diags := diag.All(err)
	wants := []struct {
		msg  string
		line int
	}{
		{"cannot assign to this expression", 2},
		{"wrong number of arguments", 3},
		{"undefined: frobnicate", 4},
	}
	found := 0
	for _, w := range wants {
		ok := false
		for _, d := range diags {
			if strings.Contains(d.Msg, w.msg) && d.Pos.Line == w.line {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("missing diagnostic %q on line %d; got:\n%v", w.msg, w.line, err)
			continue
		}
		found++
	}
	if found < len(wants) {
		return
	}
	for i := 1; i < len(diags); i++ {
		p, q := diags[i-1].Pos, diags[i].Pos
		if p.Line > q.Line || (p.Line == q.Line && p.Col > q.Col) {
			t.Errorf("diagnostics out of source order: %s before %s", diags[i-1], diags[i])
		}
	}
}

// TestDiagPositionsLineEndingsAndColumns pins the position model across
// line-terminator and column edge cases: CRLF pairs and lone CR both
// terminate exactly one line, tabs count one column, and columns count
// runes, not bytes. Before the model was fixed, a lone CR never advanced
// the line counter and multi-byte characters inflated every column to
// their byte width.
func TestDiagPositionsLineEndingsAndColumns(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
		line int
		col  int
	}{
		{
			name: "CRLF terminates one line",
			src:  "int main(void) {\r\n  3 = 4;\r\n  return 0;\r\n}\r\n",
			want: "cannot assign to this expression",
			line: 2, col: 3,
		},
		{
			name: "lone CR terminates a line",
			src:  "int main(void) {\r  3 = 4;\r  return 0;\r}\r",
			want: "cannot assign to this expression",
			line: 2, col: 3,
		},
		{
			name: "mixed terminators",
			src:  "int main(void) {\r\n  int x = 0;\r  3 = 4;\n  return x;\n}",
			want: "cannot assign to this expression",
			line: 3, col: 3,
		},
		{
			name: "tab counts one column",
			src:  "int main(void) {\n\t\t3 = 4;\n\treturn 0;\n}",
			want: "cannot assign to this expression",
			line: 2, col: 3,
		},
		{
			name: "columns count runes not bytes",
			src:  "int main(void) { /* héllo wörld */ 3 = 4; return 0; }",
			want: "cannot assign to this expression",
			line: 1, col: 36,
		},
		{
			name: "line comment ends at lone CR",
			src:  "int main(void) { // comment\r  3 = 4;\r  return 0;\r}",
			want: "cannot assign to this expression",
			line: 2, col: 3,
		},
		{
			name: "unterminated string literal stops at CRLF",
			src:  "#include \"broken\r\nint main(void) { return 0; }\r\n",
			want: "unterminated string literal",
			line: 1, col: 10,
		},
		{
			name: "unknown directive",
			src:  "#define X 1\nint main(void) { return 0; }\n",
			want: "unknown directive #define",
			line: 1, col: 1,
		},
		{
			name: "unresolved include in single-file compile",
			src:  "#include \"dep\"\nint main(void) { return 0; }\n",
			want: `unresolved #include "dep"`,
			line: 1, col: 1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := usher.Compile("t.c", tt.src)
			if err == nil {
				t.Fatal("Compile succeeded, want an error")
			}
			var hit *diag.Diagnostic
			for _, d := range diag.All(err) {
				if strings.Contains(d.Msg, tt.want) {
					hit = d
					break
				}
			}
			if hit == nil {
				t.Fatalf("no diagnostic contains %q; got:\n%v", tt.want, err)
			}
			if hit.Pos.Line != tt.line || hit.Pos.Col != tt.col {
				t.Errorf("pos = %d:%d, want %d:%d", hit.Pos.Line, hit.Pos.Col, tt.line, tt.col)
			}
		})
	}
}
