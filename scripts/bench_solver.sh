#!/usr/bin/env bash
# Regenerate the pointer-solver benchmark records checked into the repo:
#
#   BENCH_solver_baseline.json — legacy map-based solver vs the
#     bit-vector solver (microbench + full usher-bench sweeps). The
#     checked-in file is hand-assembled from the three command outputs
#     below; rerun them and splice the numbers (see the file's
#     "regenerate" section).
#   BENCH_solver_scale.json — wave-solver scaling over the XL
#     constraint profiles (workers 1/2/4/8 vs the sequential solver)
#     plus snapshot warm-start timings. Written directly by usher-bench.
#
# Timings move with the machine; the stats_identical /
# signature_identical / plans_identical booleans and every non-timing
# number must not. Meaningful wave-solver speedups need >= 4 CPUs —
# on smaller machines the sweep still runs and the parity checks still
# bite, but speedup_vs_sequential hovers near 1.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== solver microbenchmarks (baseline: bitvector vs legacy) =="
go test -run='^$' -bench=BenchmarkSolver -benchtime=10x ./internal/pointer/

echo "== full-sweep baseline: legacy solver =="
go run ./cmd/usher-bench -all -legacy-solver -json /tmp/bench_solver_pre.json
echo "wrote /tmp/bench_solver_pre.json (splice into BENCH_solver_baseline.json)"

echo "== full-sweep baseline: bit-vector solver =="
go run ./cmd/usher-bench -all -json /tmp/bench_solver_post.json
echo "wrote /tmp/bench_solver_post.json (splice into BENCH_solver_baseline.json)"

echo "== wave-solver scaling + snapshot warm starts =="
go run ./cmd/usher-bench -solver-scale -json BENCH_solver_scale.json

echo "OK"
