#!/usr/bin/env bash
# Full verification: build, vet, format check, tests, extended fuzz.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l . | grep -v '^$' || true)
if [ -n "$unformatted" ]; then
  echo "needs gofmt:"; echo "$unformatted"; exit 1
fi

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== test =="
go test ./...

echo "== extended fuzz (1000 seeds) =="
USHER_FUZZ_SEEDS=1000 go test -run TestExtendedFuzz .

echo "== differential campaign (1000 seeds) =="
go run ./cmd/usher-difftest -seeds 1000 -repro-dir testdata/difftest

echo "OK"
