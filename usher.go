// Package usher is a from-scratch reproduction of "Accelerating Dynamic
// Detection of Uses of Undefined Values with Static Value-Flow Analysis"
// (Ye, Sui, Xue; CGO 2014).
//
// The package compiles MiniC (a C subset) to an SSA IR, runs the Usher
// static value-flow analysis to decide which shadow propagations and
// definedness checks a dynamic detector actually needs, and executes
// programs under the resulting instrumentation plans, counting the
// dynamic shadow work that full (MSan-style) instrumentation would have
// performed and Usher avoids.
//
// Typical use:
//
//	prog, err := usher.Compile("prog.c", src)
//	an, err := usher.Analyze(prog, usher.ConfigUsherFull)
//	res, err := an.Run(usher.RunOptions{})
//	// res.ShadowWarnings: detected uses of undefined values
//	// res.ShadowProps/ShadowChecks: dynamic instrumentation cost
package usher

import (
	"fmt"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/instrument"
	"github.com/valueflow/usher/internal/interp"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/pipeline"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/vfg"
)

// Config selects an instrumentation configuration (§4.5 of the paper).
type Config int

// The five configurations evaluated in the paper.
const (
	// ConfigMSan is full instrumentation: every statement shadowed, every
	// critical operation checked.
	ConfigMSan Config = iota
	// ConfigUsherTL analyzes top-level variables only (no Opt I/II);
	// memory stays fully instrumented.
	ConfigUsherTL
	// ConfigUsherTLAT adds address-taken variables to the value-flow
	// analysis.
	ConfigUsherTLAT
	// ConfigUsherOptI adds Opt I (value-flow simplification).
	ConfigUsherOptI
	// ConfigUsherFull adds Opt II (redundant check elimination): the
	// paper's "Usher".
	ConfigUsherFull
	// ConfigUsherOptIII extends the paper's Usher with dominated
	// same-value check elimination, a new VFG-based optimization in the
	// direction of the paper's future work (§6).
	ConfigUsherOptIII
)

// configSpec is one row of the config-capabilities table: the
// pipeline-level plan specification (graph flavor, optimizations, memory
// treatment) plus whether the configuration extends the paper's set.
type configSpec struct {
	plan     pipeline.PlanSpec
	extended bool
}

// configTable is the single source of truth for configuration dispatch.
// Session.Analyze, Config.String, Configs/ExtendedConfigs and difftest's
// per-config soundness contract (Config.ElidesChecks) all read this table;
// there are deliberately no ordering comparisons (`cfg >= ...`) anywhere
// else.
var configTable = [...]configSpec{
	ConfigMSan:      {plan: pipeline.PlanSpec{Name: "MSan", Full: true}},
	ConfigUsherTL:   {plan: pipeline.PlanSpec{Name: "UsherTL", TopLevelOnly: true, MemoryFull: true}},
	ConfigUsherTLAT: {plan: pipeline.PlanSpec{Name: "UsherTL+AT"}},
	ConfigUsherOptI: {plan: pipeline.PlanSpec{Name: "UsherOptI", OptI: true}},
	ConfigUsherFull: {plan: pipeline.PlanSpec{Name: "Usher", OptI: true, OptII: true}},
	ConfigUsherOptIII: {
		plan:     pipeline.PlanSpec{Name: "Usher+OptIII", OptI: true, OptII: true, OptIII: true},
		extended: true,
	},
}

// Configs lists the paper's five configurations in evaluation order.
var Configs []Config

// ExtendedConfigs additionally includes the Opt III extension.
var ExtendedConfigs []Config

func init() {
	for c := range configTable {
		if !configTable[c].extended {
			Configs = append(Configs, Config(c))
		}
		ExtendedConfigs = append(ExtendedConfigs, Config(c))
	}
}

// spec returns the configuration's capability row, or an error for a
// Config value outside the table.
func (c Config) spec() (configSpec, error) {
	if c < 0 || int(c) >= len(configTable) {
		return configSpec{}, fmt.Errorf("usher: unknown configuration %s", c)
	}
	return configTable[c], nil
}

func (c Config) String() string {
	if c >= 0 && int(c) < len(configTable) {
		return configTable[c].plan.Name
	}
	return fmt.Sprintf("Config(%d)", int(c))
}

// TopLevelOnly reports whether the configuration analyzes top-level
// variables only (the Usher_TL graph).
func (c Config) TopLevelOnly() bool {
	s, err := c.spec()
	return err == nil && s.plan.TopLevelOnly
}

// ElidesChecks reports whether the configuration may elide definedness
// checks that an exact configuration would emit (Opt II redundant check
// elimination or Opt III dominated-check elimination). Difftest's
// soundness contract keys off this: eliding configurations may drop
// dominated duplicate warnings but never all reports.
func (c Config) ElidesChecks() bool {
	s, err := c.spec()
	return err == nil && (s.plan.OptII || s.plan.OptIII)
}

// Compile parses, type-checks and lowers MiniC source into SSA-form IR
// (the O0+IM pipeline without inlining; see package passes for the
// inlining step and the O1/O2 pipelines).
func Compile(file, src string) (*ir.Program, error) {
	return compile.Source(file, src)
}

// MustCompile is Compile for known-good sources; it panics on error.
func MustCompile(file, src string) *ir.Program {
	return compile.MustSource(file, src)
}

// Analysis bundles everything the analysis produced for one program under
// one configuration.
type Analysis struct {
	Config  Config
	Prog    *ir.Program
	Pointer *pointer.Result
	Mem     *memssa.Info
	Graph   *vfg.Graph
	Gamma   *vfg.Gamma
	Plan    *instrument.Plan
	// MFCsSimplified, Redirected and ChecksElided are the Opt I / Opt II /
	// Opt III statistics (zero for configurations that do not run them).
	MFCsSimplified int
	Redirected     int
	ChecksElided   int
}

// Analyze runs the full static pipeline for the chosen configuration.
// To analyze the same program under several configurations, create a
// Session and call its Analyze method instead: the session computes the
// config-invariant artifacts (pointer analysis, memory SSA, VFG, Γ) once
// and shares them, which is several times faster and produces identical
// results.
//
// Analyze never panics: an internal invariant violation inside any
// analysis stage is returned as an error (see package diag).
func Analyze(prog *ir.Program, cfg Config) (*Analysis, error) {
	return NewSession(prog).Analyze(cfg)
}

// MustAnalyze is Analyze for programs known to analyze cleanly; it
// panics on error (a caller contract violation, see package diag).
func MustAnalyze(prog *ir.Program, cfg Config) *Analysis {
	return NewSession(prog).MustAnalyze(cfg)
}

// RunOptions configures an instrumented execution.
type RunOptions struct {
	// Args are main's arguments (all treated as defined).
	Args []int64
	// MaxSteps bounds execution (0 = default).
	MaxSteps int64
	// Input supplies values for the input() builtin.
	Input func(i int) int64
}

func (o RunOptions) interpOptions() (interp.Options, []interp.Value) {
	var args []interp.Value
	for _, a := range o.Args {
		args = append(args, interp.IntVal(a))
	}
	return interp.Options{MaxSteps: o.MaxSteps, Input: o.Input}, args
}

// Run executes the program under the analysis' instrumentation plan.
func (a *Analysis) Run(opts RunOptions) (*interp.Result, error) {
	io, args := opts.interpOptions()
	io.Shadow = &interp.ShadowConfig{Plan: a.Plan}
	return interp.Run(a.Prog, "main", args, io)
}

// RunNative executes the program without any instrumentation (the
// slowdown baseline). The result still carries the ground-truth oracle
// warnings.
func RunNative(prog *ir.Program, opts RunOptions) (*interp.Result, error) {
	io, args := opts.interpOptions()
	return interp.Run(prog, "main", args, io)
}

// StaticStats returns the plan's static propagation/check counts (the
// quantities of Figure 11).
func (a *Analysis) StaticStats() instrument.Stats { return a.Plan.StaticStats() }
