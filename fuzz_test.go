package usher_test

import "testing"

// FuzzSoundness drives the full-pipeline soundness property with Go's
// native fuzzer:
//
//	go test -fuzz=FuzzSoundness -fuzztime=30s
//
// Each input seed deterministically generates a random MiniC program
// (internal/randprog); the property then checks oracle agreement, no
// false positives, no uninitialized shadow reads and semantic
// equivalence across all five configurations.
func FuzzSoundness(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := checkSeed(seed); err != nil {
			t.Fatal(err)
		}
	})
}
