// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// per table/figure, plus micro-benchmarks for the analysis phases.
//
//	go test -bench=. -benchmem
//
// BenchmarkTable1Stats      — Table 1 (static analysis statistics, O0+IM)
// BenchmarkFig10Overhead    — Figure 10 (dynamic slowdowns per config)
// BenchmarkFig11StaticCounts— Figure 11 (static instrumentation counts)
// BenchmarkOptLevelO1/O2    — §4.6 (slowdowns under O1/O2)
// BenchmarkAnalysisCost     — §4.4 (whole-program analysis cost)
package usher_test

import (
	"fmt"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/vfg"
	"github.com/valueflow/usher/internal/workload"
)

// mediumProfile is a representative benchmark for per-phase benchmarks.
func mediumProfile() workload.Profile {
	p, _ := workload.ByName("crafty")
	return p
}

// BenchmarkTable1Stats regenerates the Table 1 statistics for the whole
// suite.
func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 15 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig10Overhead regenerates Figure 10: per-benchmark dynamic
// slowdowns of all five configurations under O0+IM. The averages are
// reported as custom metrics.
func BenchmarkFig10Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig10(passes.O0IM)
		if err != nil {
			b.Fatal(err)
		}
		for j, cfg := range usher.Configs {
			j := j
			avg := bench.Averages(rows, func(r bench.OverheadRow) float64 { return r.Runs[j].OverheadPct })
			b.ReportMetric(avg, fmt.Sprintf("%%overhead-%s", cfg))
		}
	}
}

// BenchmarkFig10PerBenchmark runs the Figure 10 measurement for each
// workload separately.
func BenchmarkFig10PerBenchmark(b *testing.B) {
	for _, p := range workload.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			c, err := bench.Prepare(p, passes.O0IM)
			if err != nil {
				b.Fatal(err)
			}
			an := usher.MustAnalyze(c.Prog, usher.ConfigUsherFull)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := an.Run(usher.RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(bench.Overhead(res), "%overhead-usher")
			}
		})
	}
}

// BenchmarkFig11StaticCounts regenerates Figure 11.
func BenchmarkFig11StaticCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		for j := 1; j < len(usher.Configs); j++ {
			j := j
			b.ReportMetric(bench.Averages(rows, func(r bench.StaticRow) float64 { return r.PropsPct[j] }),
				fmt.Sprintf("%%props-%s", usher.Configs[j]))
		}
	}
}

// BenchmarkOptLevelO1 and BenchmarkOptLevelO2 regenerate §4.6.
func BenchmarkOptLevelO1(b *testing.B) { benchOptLevel(b, passes.O1) }

// BenchmarkOptLevelO2 is §4.6 under O2.
func BenchmarkOptLevelO2(b *testing.B) { benchOptLevel(b, passes.O2) }

func benchOptLevel(b *testing.B, level passes.Level) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig10(level)
		if err != nil {
			b.Fatal(err)
		}
		msan := bench.Averages(rows, func(r bench.OverheadRow) float64 { return r.Runs[0].OverheadPct })
		ush := bench.Averages(rows, func(r bench.OverheadRow) float64 {
			return r.Runs[len(r.Runs)-1].OverheadPct
		})
		b.ReportMetric(msan, "%overhead-msan")
		b.ReportMetric(ush, "%overhead-usher")
	}
}

// BenchmarkAnalysisCost measures the whole static pipeline (§4.4: the
// paper reports under 10 s and 600 MB on average for SPEC).
func BenchmarkAnalysisCost(b *testing.B) {
	c, err := bench.Prepare(mediumProfile(), passes.O0IM)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		usher.MustAnalyze(c.Prog, usher.ConfigUsherFull)
	}
}

// Phase micro-benchmarks.

func BenchmarkPointerAnalysis(b *testing.B) {
	c, err := bench.Prepare(mediumProfile(), passes.O0IM)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pointer.Analyze(c.Prog)
	}
}

func BenchmarkMemorySSA(b *testing.B) {
	c, err := bench.Prepare(mediumProfile(), passes.O0IM)
	if err != nil {
		b.Fatal(err)
	}
	pa := pointer.Analyze(c.Prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		memssa.Build(c.Prog, pa)
	}
}

func BenchmarkVFGBuildAndResolve(b *testing.B) {
	c, err := bench.Prepare(mediumProfile(), passes.O0IM)
	if err != nil {
		b.Fatal(err)
	}
	pa := pointer.Analyze(c.Prog)
	mem := memssa.Build(c.Prog, pa)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := vfg.Build(c.Prog, pa, mem, vfg.Options{})
		vfg.Resolve(g)
	}
}

func BenchmarkInterpNative(b *testing.B) {
	c, err := bench.Prepare(mediumProfile(), passes.O0IM)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := usher.RunNative(c.Prog, usher.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpMSan(b *testing.B) { benchInterp(b, usher.ConfigMSan) }

func BenchmarkInterpUsher(b *testing.B) { benchInterp(b, usher.ConfigUsherFull) }

func benchInterp(b *testing.B, cfg usher.Config) {
	c, err := bench.Prepare(mediumProfile(), passes.O0IM)
	if err != nil {
		b.Fatal(err)
	}
	an := usher.MustAnalyze(c.Prog, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.Run(usher.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

// BenchmarkAblationSemiStrong measures the static savings attributable to
// semi-strong updates alone.
func BenchmarkAblationSemiStrong(b *testing.B) {
	c, err := bench.Prepare(mediumProfile(), passes.O0IM)
	if err != nil {
		b.Fatal(err)
	}
	pa := pointer.Analyze(c.Prog)
	mem := memssa.Build(c.Prog, pa)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, noSemi := range []bool{false, true} {
			g := vfg.Build(c.Prog, pa, mem, vfg.Options{NoSemiStrong: noSemi})
			gm := vfg.Resolve(g)
			suffix := "with-semi"
			if noSemi {
				suffix = "no-semi"
			}
			b.ReportMetric(float64(gm.BottomCount()), "bottom-nodes-"+suffix)
		}
	}
}
