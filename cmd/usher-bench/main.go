// Command usher-bench regenerates the tables and figures of the paper's
// evaluation over the synthetic SPEC2000 stand-in suite.
//
// Usage:
//
//	usher-bench [-table1] [-fig10] [-fig11] [-opt-levels] [-ablations] [-all]
//	            [-solver-scale] [-resolve-scale] [-snapshot-dir dir]
//	            [-incremental] [-incremental-iters N] [-parallel N]
//	            [-solver-workers N] [-gamma-summaries] [-json path] [-stats]
//	            [-legacy-solver] [-cpuprofile path] [-memprofile path]
//
// -legacy-solver routes every pointer analysis through the retired
// map-based solver, which is kept as the pre-optimization baseline for
// the bit-vector solver (see BENCH_solver_baseline.json); results are
// identical, only the timings move. -solver-workers N routes them
// through the parallel wave solver instead (0, the default, keeps the
// classic sequential solver); every reported number is bit-identical
// for any value. -solver-scale runs the million-constraint scaling
// harness — wave-solver timings over the XL constraint profiles at
// workers 1/2/4/8 plus snapshot warm-start measurements (see
// BENCH_solver_scale.json) — and is not part of -all. -resolve-scale
// runs the Γ-resolution scaling harness — the Opt IV summary-based
// resolver against the dense baseline over the resolve-stress XL
// profiles and the module projects (see BENCH_resolve.json) — and is
// likewise not part of -all. -gamma-summaries routes every Γ
// resolution in the selected phases through the summary resolver;
// results are bit-identical, only timings move.
//
// With no selection flags, -all is assumed. Work is spread over -parallel
// workers (default: one per CPU) at two levels — across workload profiles
// and across configurations within a profile — with per-profile analysis
// sessions sharing the config-invariant artifacts; every reported number
// is identical to a -parallel 1 run. -json additionally writes the full
// results, per-phase wall-clock and machine info to the given path.
// -stats collects per-pipeline-pass observations (wall time, allocations,
// work counters) aggregated over every analyzed program, prints them, and
// adds them to the JSON report's "phases" section; the counters (not the
// timings) are covered by the bit-identical-under--parallel guarantee.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/stats"
)

func main() {
	table1 := flag.Bool("table1", false, "benchmark statistics under O0+IM (Table 1)")
	fig10 := flag.Bool("fig10", false, "execution-time slowdowns under O0+IM (Figure 10)")
	fig11 := flag.Bool("fig11", false, "static instrumentation counts (Figure 11)")
	optLevels := flag.Bool("opt-levels", false, "slowdowns under O1 and O2 (Section 4.6)")
	ablations := flag.Bool("ablations", false, "design-choice ablation study")
	solverScale := flag.Bool("solver-scale", false,
		"wave-solver scaling over the XL constraint profiles and snapshot warm starts (not part of -all)")
	resolveScale := flag.Bool("resolve-scale", false,
		"summary-based Γ resolution (Opt IV) vs the dense resolver over the resolve-stress profiles (not part of -all)")
	snapshotDir := flag.String("snapshot-dir", "",
		"directory for -solver-scale warm-start snapshots (default: a temp dir, removed after)")
	incremental := flag.Bool("incremental", false,
		"multi-file module builds: cold vs. warm vs. 1-line edit (not part of -all)")
	incrementalIters := flag.Int("incremental-iters", 3, "timing repetitions per -incremental measurement (best is reported)")
	all := flag.Bool("all", false, "everything")
	legacySolver := flag.Bool("legacy-solver", false, "use the retired map-based pointer solver (pre-optimization baseline)")
	cf := bench.RegisterCommonFlags(flag.CommandLine)
	flag.Parse()
	if err := cf.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "usher-bench:", err)
		os.Exit(2)
	}

	pointer.UseLegacySolver = *legacySolver
	cf.ApplySolver()
	solverName := "bitvector"
	if *legacySolver {
		solverName = "legacy"
	}
	sc := cf.Collector()
	stopProfiles, err := cf.Profile.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "usher-bench:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "usher-bench: profiles:", err)
		}
	}()

	if !*table1 && !*fig10 && !*fig11 && !*optLevels && !*ablations && !*solverScale && !*resolveScale && !*incremental {
		*all = true
	}
	report := &bench.Report{
		SchemaVersion:  bench.SchemaVersion,
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		NumCPU:         runtime.NumCPU(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Parallel:       cf.Parallel,
		Solver:         solverName,
		SolverWorkers:  cf.SolverWorkers,
		GammaSummaries: cf.GammaSummaries,
	}
	// fail writes the partial report before exiting, so a late-phase
	// failure does not discard the completed phases: the JSON carries
	// everything finished so far plus an "error" field.
	fail := func(err error) {
		if cf.JSONPath != "" {
			report.Phases = sc.Snapshot()
			if werr := report.WriteFailure(cf.JSONPath, err); werr != nil {
				fmt.Fprintln(os.Stderr, "usher-bench: writing partial report:", werr)
			} else {
				fmt.Fprintf(os.Stderr, "usher-bench: wrote partial JSON results to %s\n", cf.JSONPath)
			}
		}
		fmt.Fprintln(os.Stderr, "usher-bench:", err)
		os.Exit(1)
	}

	if *all || *table1 {
		fmt.Println("=== Table 1: benchmark statistics under O0+IM ===")
		start := time.Now()
		rows, err := bench.Table1Observed(cf.Parallel, sc)
		if err != nil {
			fail(err)
		}
		report.AddPhase("table1", start)
		report.Table1 = rows
		bench.WriteTable1(os.Stdout, rows)
		fmt.Println()
	}
	if *all || *fig10 {
		fmt.Println("=== Figure 10: execution-time slowdowns (O0+IM) ===")
		start := time.Now()
		rows, err := bench.Fig10ParallelObserved(passes.O0IM, cf.Parallel, sc)
		if err != nil {
			fail(err)
		}
		report.AddPhase("fig10", start)
		report.Fig10 = append(report.Fig10, bench.LevelRows{Level: passes.O0IM.String(), Rows: rows})
		bench.WriteFig10(os.Stdout, passes.O0IM, rows)
		fmt.Println()
	}
	if *all || *fig11 {
		fmt.Println("=== Figure 11: static instrumentation counts ===")
		start := time.Now()
		rows, err := bench.Fig11Observed(cf.Parallel, sc)
		if err != nil {
			fail(err)
		}
		report.AddPhase("fig11", start)
		report.Fig11 = rows
		bench.WriteFig11(os.Stdout, rows)
		fmt.Println()
	}
	if *all || *ablations {
		fmt.Println("=== Ablations: context sensitivity, semi-strong updates, heap cloning, node merging ===")
		start := time.Now()
		rows, err := bench.AblationsParallel(cf.Parallel)
		if err != nil {
			fail(err)
		}
		report.AddPhase("ablations", start)
		report.Ablations = rows
		bench.WriteAblations(os.Stdout, rows)
		fmt.Println()
	}
	if *all || *optLevels {
		for _, level := range []passes.Level{passes.O1, passes.O2} {
			fmt.Printf("=== Section 4.6: slowdowns under %s ===\n", level)
			start := time.Now()
			rows, err := bench.Fig10ParallelObserved(level, cf.Parallel, sc)
			if err != nil {
				fail(err)
			}
			report.AddPhase("fig10-"+level.String(), start)
			report.Fig10 = append(report.Fig10, bench.LevelRows{Level: level.String(), Rows: rows})
			bench.WriteFig10(os.Stdout, level, rows)
			fmt.Println()
		}
	}

	if *solverScale {
		fmt.Println("=== Solver scaling: wave-solver workers and snapshot warm starts ===")
		start := time.Now()
		res, err := bench.SolverScale(bench.SolverScaleWorkerCounts, *snapshotDir)
		if err != nil {
			fail(err)
		}
		report.AddPhase("solver-scale", start)
		report.SolverScale = res
		bench.WriteSolverScale(os.Stdout, res)
		fmt.Println()
	}

	if *resolveScale {
		fmt.Println("=== Resolve scaling: summary-based Γ resolution (Opt IV) vs the dense resolver ===")
		start := time.Now()
		res, err := bench.ResolveScale(bench.ResolveScaleWorkerCounts)
		if err != nil {
			fail(err)
		}
		report.AddPhase("resolve-scale", start)
		report.Resolve = res
		bench.WriteResolveScale(os.Stdout, res)
		fmt.Println()
	}

	if *incremental {
		fmt.Println("=== Incremental: multi-file module builds, cold vs. warm vs. 1-line edit ===")
		start := time.Now()
		res, err := bench.Incremental(cf.Parallel, *incrementalIters)
		if err != nil {
			fail(err)
		}
		report.AddPhase("incremental", start)
		report.Incremental = res
		bench.WriteIncremental(os.Stdout, res)
		fmt.Println()
	}

	if cf.Stats {
		report.Phases = sc.Snapshot()
		fmt.Println("=== Pipeline pass stats (aggregated over all analyzed programs) ===")
		stats.Write(os.Stdout, report.Phases)
		fmt.Println()
	}

	if cf.JSONPath != "" {
		if err := report.WriteJSON(cf.JSONPath); err != nil {
			fail(err)
		}
		fmt.Printf("wrote JSON results to %s\n", cf.JSONPath)
	}
}
