// Command usher-bench regenerates the tables and figures of the paper's
// evaluation over the synthetic SPEC2000 stand-in suite.
//
// Usage:
//
//	usher-bench [-table1] [-fig10] [-fig11] [-opt-levels] [-all]
//
// With no flags, -all is assumed.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/passes"
)

func main() {
	table1 := flag.Bool("table1", false, "benchmark statistics under O0+IM (Table 1)")
	fig10 := flag.Bool("fig10", false, "execution-time slowdowns under O0+IM (Figure 10)")
	fig11 := flag.Bool("fig11", false, "static instrumentation counts (Figure 11)")
	optLevels := flag.Bool("opt-levels", false, "slowdowns under O1 and O2 (Section 4.6)")
	ablations := flag.Bool("ablations", false, "design-choice ablation study")
	all := flag.Bool("all", false, "everything")
	flag.Parse()

	if !*table1 && !*fig10 && !*fig11 && !*optLevels && !*ablations {
		*all = true
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "usher-bench:", err)
		os.Exit(1)
	}

	if *all || *table1 {
		fmt.Println("=== Table 1: benchmark statistics under O0+IM ===")
		rows, err := bench.Table1()
		if err != nil {
			fail(err)
		}
		bench.WriteTable1(os.Stdout, rows)
		fmt.Println()
	}
	if *all || *fig10 {
		fmt.Println("=== Figure 10: execution-time slowdowns (O0+IM) ===")
		rows, err := bench.Fig10(passes.O0IM)
		if err != nil {
			fail(err)
		}
		bench.WriteFig10(os.Stdout, passes.O0IM, rows)
		fmt.Println()
	}
	if *all || *fig11 {
		fmt.Println("=== Figure 11: static instrumentation counts ===")
		rows, err := bench.Fig11()
		if err != nil {
			fail(err)
		}
		bench.WriteFig11(os.Stdout, rows)
		fmt.Println()
	}
	if *all || *ablations {
		fmt.Println("=== Ablations: context sensitivity, semi-strong updates, heap cloning, node merging ===")
		rows, err := bench.Ablations()
		if err != nil {
			fail(err)
		}
		bench.WriteAblations(os.Stdout, rows)
		fmt.Println()
	}
	if *all || *optLevels {
		for _, level := range []passes.Level{passes.O1, passes.O2} {
			fmt.Printf("=== Section 4.6: slowdowns under %s ===\n", level)
			rows, err := bench.Fig10(level)
			if err != nil {
				fail(err)
			}
			bench.WriteFig10(os.Stdout, level, rows)
			fmt.Println()
		}
	}
}
