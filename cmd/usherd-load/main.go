// Command usherd-load is the load generator for the usherd analysis
// daemon. It drives /analyze with the workload/randprog corpus assigned
// round-robin — so steady state is cache-hit dominated — and reports
// sustained requests/sec plus p50/p90/p99 latency, optionally as a JSON
// report (the committed BENCH_usherd.json).
//
// With -addr it targets a running daemon; without, it starts an
// in-process server on a loopback listener, which makes the benchmark
// self-contained:
//
//	usherd-load -n 500 -parallel 8 -json BENCH_usherd.json
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/service"
)

func main() {
	addr := flag.String("addr", "", "daemon base URL (e.g. http://localhost:8080); empty starts an in-process server")
	n := flag.Int("n", 200, "total number of requests")
	cacheMB := flag.Int64("cache-mb", 2048, "in-process server cache budget in MiB")
	configs := flag.String("configs", "usher", "comma-separated configurations per request")
	level := flag.String("level", "O0+IM", "optimization level per request")
	run := flag.Bool("run", false, "execute each program dynamically as well")
	randSeeds := flag.Int("rand-seeds", 5, "random programs added to the 15 workload profiles")
	cf := bench.RegisterCommonFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "usherd-load:", err)
		os.Exit(2)
	}
	if err := cf.Validate(); err != nil {
		fail(err)
	}
	if *n < 1 {
		fail(fmt.Errorf("-n must be at least 1 request, got %d", *n))
	}
	cf.ApplySolver()

	base := *addr
	if base == "" {
		// Self-contained mode: loopback listener, same process. The
		// client path still goes through real HTTP, so the measured
		// latency includes serialization and the network stack.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		srv := service.New(service.Options{
			CacheBytes: *cacheMB << 20,
			Workers:    cf.Parallel,
		})
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "usherd-load: in-process server on %s (cache %d MiB)\n", base, *cacheMB)
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	rep, err := service.RunLoad(client, base, service.LoadOptions{
		Requests:    *n,
		Concurrency: cf.Parallel,
		Configs:     strings.Split(*configs, ","),
		Level:       *level,
		Run:         *run,
		RandSeeds:   *randSeeds,
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("%d requests over %d distinct programs, %d clients: %.1f req/sec\n",
		rep.Requests, rep.DistinctPrograms, rep.Concurrency, rep.RequestsPerSec)
	fmt.Printf("latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
		rep.Latency.P50, rep.Latency.P90, rep.Latency.P99, rep.Latency.Max)
	fmt.Printf("cache hits %d/%d, request errors %d\n", rep.CacheHits, rep.Requests, rep.Errors)
	if rep.Server != nil {
		fmt.Printf("server: %d entries, %d/%d MiB resident, %d evictions, heap %d MiB\n",
			rep.Server.Cache.Entries, rep.Server.Cache.Bytes>>20,
			rep.Server.Cache.BudgetBytes>>20, rep.Server.Cache.Evictions,
			rep.Server.HeapBytes>>20)
	}
	if cf.JSONPath != "" {
		if err := bench.WriteJSONFile(cf.JSONPath, rep); err != nil {
			fail(err)
		}
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}
