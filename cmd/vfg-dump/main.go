// Command vfg-dump prints the intermediate artifacts of the Usher
// pipeline for a MiniC program: the SSA IR, points-to sets, memory SSA
// annotations, and the value-flow graph with its resolved definedness
// (text or Graphviz DOT).
//
// Usage:
//
//	vfg-dump [-ir] [-pts] [-memssa] [-vfg] [-dot] [-stats]
//	         [-cpuprofile path] [-memprofile path] file.c
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/diag"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/pipeline"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/stats"
	"github.com/valueflow/usher/internal/vfg"
)

func main() {
	showIR := flag.Bool("ir", false, "print the SSA IR")
	showPts := flag.Bool("pts", false, "print points-to sets of pointer operands")
	showMem := flag.Bool("memssa", false, "print mu/chi annotations")
	showVFG := flag.Bool("vfg", false, "print the VFG with definedness states")
	dot := flag.Bool("dot", false, "emit the VFG as Graphviz DOT")
	showStats := flag.Bool("stats", false, "print per-pipeline-pass stats (wall time, allocs, work counters)")
	pf := bench.RegisterProfileFlags(flag.CommandLine)
	sf := bench.RegisterSolverFlag(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vfg-dump [flags] file.c")
		os.Exit(1)
	}
	if err := sf.Validate(); err != nil {
		fatal(err)
	}
	sf.Apply()
	stopProfiles, err := pf.Start()
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "vfg-dump: profiles:", err)
		}
	}()
	if !*showIR && !*showPts && !*showMem && !*showVFG && !*dot {
		*showIR, *showVFG = true, true
	}
	var sc *stats.Collector
	if *showStats {
		sc = stats.New()
		defer func() {
			fmt.Println("=== pipeline pass stats ===")
			stats.Write(os.Stdout, sc.Snapshot())
		}()
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := pipeline.Compile(flag.Arg(0), string(data), sc)
	if err != nil {
		fatal(err)
	}
	if err := pipeline.ApplyLevel(prog, passes.O0IM, sc); err != nil {
		fatal(err)
	}
	// Build the shared artifacts through a Session so an internal panic in
	// any analysis stage surfaces as a rendered error, not a crash.
	s := usher.NewSessionObserved(prog, sc)
	pa, mem, err := s.Base()
	if err != nil {
		fatal(err)
	}
	g, gm, err := s.Graph(false)
	if err != nil {
		fatal(err)
	}

	if *showIR {
		fmt.Println("=== IR (O0+IM) ===")
		fmt.Print(ir.Print(prog))
		fmt.Println()
	}
	if *showPts {
		fmt.Println("=== points-to sets ===")
		dumpPts(prog, pa)
		fmt.Println()
	}
	if *showMem {
		fmt.Println("=== memory SSA ===")
		dumpMemSSA(prog, mem)
		fmt.Println()
	}
	if *showVFG {
		fmt.Println("=== value-flow graph ===")
		dumpVFG(g, gm)
	}
	if *dot {
		dumpDOT(g, gm)
	}
}

func dumpPts(prog *ir.Program, pa *pointer.Result) {
	for _, fn := range prog.Funcs {
		if !fn.HasBody {
			continue
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				var addrs []ir.Value
				switch in := in.(type) {
				case *ir.Load:
					addrs = []ir.Value{in.Addr}
				case *ir.Store:
					addrs = []ir.Value{in.Addr}
				case *ir.MemSet:
					addrs = []ir.Value{in.To}
				case *ir.MemCopy:
					addrs = []ir.Value{in.To, in.From}
				default:
					continue
				}
				var names []string
				for _, addr := range addrs {
					for _, l := range pa.PointsTo(addr) {
						names = append(names, l.String())
					}
				}
				fmt.Printf("%s l%d %-40s -> {%s}\n", fn.Name, in.Label(), in, strings.Join(names, ", "))
			}
		}
	}
}

func dumpMemSSA(prog *ir.Program, mem *memssa.Info) {
	for _, fn := range prog.Funcs {
		fi := mem.Funcs[fn]
		if fi == nil {
			continue
		}
		fmt.Printf("func %s: in=%v out=%v\n", fn.Name, fi.InVars, fi.OutVars)
		for _, b := range fn.Blocks {
			for _, phi := range fi.Phis[b] {
				fmt.Printf("  %s: %s = memphi(", b, phi)
				for i, a := range phi.PhiArgs {
					if i > 0 {
						fmt.Print(", ")
					}
					fmt.Print(a)
				}
				fmt.Println(")")
			}
			for _, in := range b.Instrs {
				mus := fi.Mus[in.Label()]
				chis := fi.Chis[in.Label()]
				if len(mus) == 0 && len(chis) == 0 {
					continue
				}
				fmt.Printf("  l%-3d %s\n", in.Label(), in)
				for _, mu := range mus {
					fmt.Printf("        mu(%s)\n", mu.Use)
				}
				for _, chi := range chis {
					fmt.Printf("        %s := chi(%s)\n", chi, chi.Prev)
				}
			}
		}
	}
}

func dumpVFG(g *vfg.Graph, gm *vfg.Gamma) {
	nodes := append([]*vfg.Node(nil), g.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		if n.Kind == vfg.NodeRootT || n.Kind == vfg.NodeRootF {
			continue
		}
		fmt.Printf("%s [%s]", n, gm.Of(n))
		if len(n.Deps) > 0 {
			fmt.Print(" <- ")
			for i, e := range n.Deps {
				if i > 0 {
					fmt.Print(", ")
				}
				fmt.Print(e.To)
				switch e.Kind {
				case vfg.EdgeCall:
					fmt.Printf(" (call l%d)", e.Site.Label())
				case vfg.EdgeRet:
					fmt.Printf(" (ret l%d)", e.Site.Label())
				}
			}
		}
		fmt.Println()
	}
}

func dumpDOT(g *vfg.Graph, gm *vfg.Gamma) {
	fmt.Println("digraph vfg {")
	fmt.Println("  rankdir=BT;")
	for _, n := range g.Nodes {
		color := "black"
		if gm.Of(n) == vfg.Bottom {
			color = "red"
		}
		label := strings.ReplaceAll(n.String(), `"`, `'`)
		fmt.Printf("  n%d [label=\"%s\", color=%s];\n", n.ID, label, color)
	}
	for _, n := range g.Nodes {
		for _, e := range n.Deps {
			style := "solid"
			switch e.Kind {
			case vfg.EdgeCall:
				style = "dashed"
			case vfg.EdgeRet:
				style = "dotted"
			}
			fmt.Printf("  n%d -> n%d [style=%s];\n", n.ID, e.To.ID, style)
		}
	}
	fmt.Println("}")
}

// fatal renders err on stderr and exits non-zero. Structured diagnostics
// (see internal/diag) are printed one per line in source order.
func fatal(err error) {
	if ds := diag.All(err); len(ds) > 0 {
		for _, d := range ds {
			fmt.Fprintln(os.Stderr, "vfg-dump:", d)
		}
	} else {
		fmt.Fprintln(os.Stderr, "vfg-dump:", err)
	}
	os.Exit(1)
}
