// Command usher-difftest runs the differential soundness oracle over a
// range of randprog seeds: every generated program is compiled once and
// executed under all instrumentation configurations, with the canonical
// warning sets cross-checked against the uninstrumented ground truth
// (see internal/difftest for the per-configuration contract).
//
// Usage:
//
//	usher-difftest [-seeds N] [-from S] [-parallel P] [-json path] [-stats]
//	               [-repro-dir dir] [-minimize=false] [-solver-workers N]
//	               [-cpuprofile path] [-memprofile path]
//
// Seeds are swept on -parallel workers; the findings and the -json
// report are bit-identical for any worker count. Each diverging seed is
// delta-debugged down to a minimal reproducer (unless -minimize=false),
// printed, and written to -repro-dir as seed<N>.c when the flag is set.
// -stats aggregates per-pipeline-pass observations over the whole sweep,
// prints them, and adds them to the report's "phases" section; the
// counters (not the timings) keep the bit-identical guarantee.
//
// Exit status: 0 when every seed agrees, 1 when any seed diverges, 2 on
// infrastructure failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/difftest"
	"github.com/valueflow/usher/internal/stats"
)

func main() {
	seeds := flag.Int64("seeds", 1000, "number of randprog seeds to check")
	from := flag.Int64("from", 0, "first seed of the range")
	reproDir := flag.String("repro-dir", "", "write each minimized reproducer to this directory")
	minimize := flag.Bool("minimize", true, "delta-debug diverging programs to minimal repros")
	cf := bench.RegisterCommonFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "usher-difftest:", err)
		os.Exit(2)
	}
	if err := cf.Validate(); err != nil {
		fail(err)
	}
	cf.ApplySolver()

	stopProfiles, err := cf.Profile.Start()
	if err != nil {
		fail(err)
	}
	// flushProfiles runs before every exit path (the divergence path
	// leaves through os.Exit, which skips defers).
	flushProfiles := func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "usher-difftest: profiles:", err)
		}
	}

	report, err := difftest.Campaign(difftest.CampaignOptions{
		From:     *from,
		Seeds:    *seeds,
		Parallel: cf.Parallel,
		Minimize: *minimize,
		Stats:    cf.Collector(),
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("usher-difftest: %d seed(s) [%d, %d) under %d configuration(s): %d divergent\n",
		report.Checked, *from, *from+*seeds, len(report.Configs), report.Divergent)
	for _, f := range report.Findings {
		fmt.Printf("\nseed %d: %v\n", f.Seed, f.Divergence)
		src, stmts := f.Source, f.Stmts
		if f.Minimized != "" {
			fmt.Printf("minimized %d -> %d statement(s):\n", f.Stmts, f.MinStmts)
			src, stmts = f.Minimized, f.MinStmts
		} else {
			fmt.Printf("%d statement(s):\n", stmts)
		}
		fmt.Print(src)
		if *reproDir != "" {
			if err := os.MkdirAll(*reproDir, 0o755); err != nil {
				fail(err)
			}
			path := filepath.Join(*reproDir, fmt.Sprintf("seed%d.c", f.Seed))
			header := fmt.Sprintf("// usher-difftest reproducer: seed %d, %v\n", f.Seed, f.Divergence)
			if err := os.WriteFile(path, []byte(header+src), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}

	if cf.Stats {
		fmt.Println("\n=== Pipeline pass stats (aggregated over all checked seeds) ===")
		stats.Write(os.Stdout, report.Phases)
	}

	if cf.JSONPath != "" {
		if err := report.WriteJSON(cf.JSONPath); err != nil {
			fail(err)
		}
		fmt.Printf("wrote JSON report to %s\n", cf.JSONPath)
	}
	flushProfiles()
	if report.Divergent > 0 {
		os.Exit(1)
	}
}
