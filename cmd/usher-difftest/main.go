// Command usher-difftest runs the differential soundness oracle over a
// range of randprog seeds: every generated program is compiled once and
// executed under all instrumentation configurations, with the canonical
// warning sets cross-checked against the uninstrumented ground truth
// (see internal/difftest for the per-configuration contract).
//
// Usage:
//
//	usher-difftest [-seeds N] [-from S] [-parallel P] [-json path] [-stats]
//	               [-mutate] [-mutants-per-seed N]
//	               [-repro-dir dir] [-minimize=false] [-solver-workers N]
//	               [-gamma-summaries] [-cpuprofile path] [-memprofile path]
//
// Seeds are swept on -parallel workers; the findings and the -json
// report are bit-identical for any worker count. With -mutate, the
// sweep becomes the sanitizer-vs-sanitizer campaign: each generated
// program is perturbed by up to -mutants-per-seed semantic mutations
// (drop-memset, shrink-copy-length, reorder-struct-assign,
// route-through-varargs) and every mutant is replayed under every
// configuration against the mutant's own interpreter ground truth.
// Each diverging program is delta-debugged down to a minimal
// reproducer (unless -minimize=false), printed, and written to
// -repro-dir as seed<N>.c (seed<N>m<I>.c for mutants) when the flag is
// set.
// -stats aggregates per-pipeline-pass observations over the whole sweep,
// prints them, and adds them to the report's "phases" section; the
// counters (not the timings) keep the bit-identical guarantee.
//
// Exit status: 0 when every seed agrees, 1 when any seed diverges, 2 on
// infrastructure failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/difftest"
	"github.com/valueflow/usher/internal/stats"
)

func main() {
	seeds := flag.Int64("seeds", 1000, "number of randprog seeds to check")
	from := flag.Int64("from", 0, "first seed of the range")
	reproDir := flag.String("repro-dir", "", "write each minimized reproducer to this directory")
	minimize := flag.Bool("minimize", true, "delta-debug diverging programs to minimal repros")
	mutate := flag.Bool("mutate", false,
		"sanitizer-vs-sanitizer mode: replay semantic mutants of every seed instead of the seeds themselves")
	mutantsPerSeed := flag.Int("mutants-per-seed", 8,
		"with -mutate, max mutants replayed per seed (0 = every applicable mutation)")
	cf := bench.RegisterCommonFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "usher-difftest:", err)
		os.Exit(2)
	}
	if err := cf.Validate(); err != nil {
		fail(err)
	}
	cf.ApplySolver()

	stopProfiles, err := cf.Profile.Start()
	if err != nil {
		fail(err)
	}
	// flushProfiles runs before every exit path (the divergence path
	// leaves through os.Exit, which skips defers).
	flushProfiles := func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "usher-difftest: profiles:", err)
		}
	}

	copts := difftest.CampaignOptions{
		From:     *from,
		Seeds:    *seeds,
		Parallel: cf.Parallel,
		Minimize: *minimize,
		Stats:    cf.Collector(),
	}
	var report *difftest.Report
	if *mutate {
		report, err = difftest.MutationCampaign(difftest.MutationCampaignOptions{
			CampaignOptions: copts,
			MutantsPerSeed:  *mutantsPerSeed,
		})
	} else {
		report, err = difftest.Campaign(copts)
	}
	if err != nil {
		fail(err)
	}

	if *mutate {
		fmt.Printf("usher-difftest: %d mutant(s) of %d seed(s) [%d, %d) under %d configuration(s): %d divergent\n",
			report.Mutants, report.Checked, *from, *from+*seeds, len(report.Configs), report.Divergent)
	} else {
		fmt.Printf("usher-difftest: %d seed(s) [%d, %d) under %d configuration(s): %d divergent\n",
			report.Checked, *from, *from+*seeds, len(report.Configs), report.Divergent)
	}
	for i, f := range report.Findings {
		if f.Mutation != "" {
			fmt.Printf("\nseed %d (mutation %s): %v\n", f.Seed, f.Mutation, f.Divergence)
		} else {
			fmt.Printf("\nseed %d: %v\n", f.Seed, f.Divergence)
		}
		src, stmts := f.Source, f.Stmts
		if f.Minimized != "" {
			fmt.Printf("minimized %d -> %d statement(s):\n", f.Stmts, f.MinStmts)
			src, stmts = f.Minimized, f.MinStmts
		} else {
			fmt.Printf("%d statement(s):\n", stmts)
		}
		fmt.Print(src)
		if *reproDir != "" {
			if err := os.MkdirAll(*reproDir, 0o755); err != nil {
				fail(err)
			}
			name := fmt.Sprintf("seed%d.c", f.Seed)
			header := fmt.Sprintf("// usher-difftest reproducer: seed %d, %v\n", f.Seed, f.Divergence)
			if f.Mutation != "" {
				name = fmt.Sprintf("seed%dm%d.c", f.Seed, i)
				header = fmt.Sprintf("// usher-difftest reproducer: seed %d, mutation %s, %v\n",
					f.Seed, f.Mutation, f.Divergence)
			}
			path := filepath.Join(*reproDir, name)
			if err := os.WriteFile(path, []byte(header+src), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}

	if cf.Stats {
		fmt.Println("\n=== Pipeline pass stats (aggregated over all checked seeds) ===")
		stats.Write(os.Stdout, report.Phases)
	}

	if cf.JSONPath != "" {
		if err := report.WriteJSON(cf.JSONPath); err != nil {
			fail(err)
		}
		fmt.Printf("wrote JSON report to %s\n", cf.JSONPath)
	}
	flushProfiles()
	if report.Divergent > 0 {
		os.Exit(1)
	}
}
