// Command usherd is the long-running analysis daemon: an HTTP/JSON
// front end over the usher pipeline that caches analysis artifacts by a
// content hash of the submitted source, so repeated submissions reuse
// the pointer analysis, memory SSA, value-flow graph and instrumentation
// plans computed by earlier requests (see internal/service).
//
// Requests may submit either one "source" string or a multi-file
// "files" list of {name, source} modules linked by #include "name"
// directives; multi-file submissions additionally share a per-module
// unit cache (-module-cache-mb) keyed by transitive content hash, so a
// 1-line edit recompiles only the edited module and its dependents.
//
// Endpoints:
//
//	POST /analyze       analyze (and by default run) a MiniC program
//	GET  /stats         cache + request counters, per-pass aggregates
//	GET  /healthz       liveness probe
//	GET  /debug/pprof/  standard Go profiling
//
// Example:
//
//	usherd -addr :8080 -cache-mb 512 &
//	curl -d '{"source":"int main() { int x; print(x); return 0; }"}' \
//	    localhost:8080/analyze
//
// On SIGINT/SIGTERM the daemon drains in-flight requests and, with
// -json, writes its final /stats view to the given path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	cacheMB := flag.Int64("cache-mb", 256, "artifact cache budget in MiB (0 disables caching)")
	moduleCacheMB := flag.Int64("module-cache-mb", 64, "per-module unit cache budget in MiB for multi-file requests (0 disables)")
	maxBodyKB := flag.Int64("max-body-kb", 1024, "maximum /analyze request body in KiB")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline (queueing + analysis + run)")
	maxSteps := flag.Int64("max-steps", 50_000_000, "dynamic-run instruction budget per request")
	cf := bench.RegisterCommonFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "usherd:", err)
		os.Exit(2)
	}
	if err := cf.Validate(); err != nil {
		fail(err)
	}
	if *cacheMB < 0 {
		fail(fmt.Errorf("-cache-mb must be non-negative, got %d", *cacheMB))
	}
	if *moduleCacheMB < 0 {
		fail(fmt.Errorf("-module-cache-mb must be non-negative, got %d", *moduleCacheMB))
	}
	cf.ApplySolver()

	stopProfiles, err := cf.Profile.Start()
	if err != nil {
		fail(err)
	}

	// In service.Options zero means "use the default" and negative means
	// "disabled"; the flags promise that 0 disables, so translate.
	disableZero := func(mb int64, shift uint) int64 {
		if mb == 0 {
			return -1
		}
		return mb << shift
	}
	srv := service.New(service.Options{
		CacheBytes:       disableZero(*cacheMB, 20),
		ModuleCacheBytes: disableZero(*moduleCacheMB, 20),
		MaxBodyBytes:     *maxBodyKB << 10,
		Timeout:          *timeout,
		Workers:          cf.Parallel,
		MaxSteps:         *maxSteps,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "usherd: listening on %s (cache %d MiB, %d workers)\n",
		*addr, *cacheMB, cf.Parallel)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "usherd: %s, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		httpSrv.Shutdown(ctx)
		cancel()
	}

	if cf.JSONPath != "" {
		if err := bench.WriteJSONFile(cf.JSONPath, srv.Stats()); err != nil {
			fmt.Fprintln(os.Stderr, "usherd: stats report:", err)
		}
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "usherd: profiles:", err)
	}
}
