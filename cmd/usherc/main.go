// Command usherc compiles, analyzes and runs MiniC programs under the
// Usher instrumentation configurations.
//
// Usage:
//
//	usherc [flags] file.c [more.c ...]
//
// With more than one file, each file is a module named after its base
// name (extension stripped) and may reference the others with
// `#include "name"`; the set is compiled per-module in dependency
// order and linked into one program before analysis (see
// internal/module).
//
// Examples:
//
//	usherc prog.c                         # analyze with Usher, run, report
//	usherc -config msan prog.c            # full instrumentation instead
//	usherc -compare prog.c                # all five configurations side by side
//	usherc -level O2 -dump-ir prog.c      # optimize and print the IR
//	usherc main.c lib.c util.c            # multi-file module build
//	usherc -workload parser               # use a generated benchmark as input
//	usherc -stats prog.c                  # per-pipeline-pass timings and counters
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/diag"
	"github.com/valueflow/usher/internal/interp"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/module"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/pipeline"
	"github.com/valueflow/usher/internal/stats"
	"github.com/valueflow/usher/internal/workload"
)

func main() {
	configName := flag.String("config", "usher", "configuration: msan, tl, tlat, opti, usher")
	levelName := flag.String("level", "O0+IM", "optimization level: O0, O0+IM, O1, O2")
	compare := flag.Bool("compare", false, "run every configuration and compare")
	dumpIR := flag.Bool("dump-ir", false, "print the optimized IR and exit")
	dumpSrc := flag.Bool("dump-src", false, "print the (possibly generated) MiniC source and exit")
	noRun := flag.Bool("no-run", false, "analyze only; print static statistics")
	workloadName := flag.String("workload", "", "use a generated benchmark instead of a file")
	showStats := flag.Bool("stats", false, "print per-pipeline-pass stats (wall time, allocs, work counters)")
	pf := bench.RegisterProfileFlags(flag.CommandLine)
	sf := bench.RegisterSolverFlag(flag.CommandLine)
	flag.Parse()
	if err := sf.Validate(); err != nil {
		fatal(err)
	}
	sf.Apply()

	stopProfiles, err := pf.Start()
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "usherc: profiles:", err)
		}
	}()

	var sc *stats.Collector
	if *showStats {
		sc = stats.New()
		defer func() {
			fmt.Println("=== pipeline pass stats ===")
			stats.Write(os.Stdout, sc.Snapshot())
		}()
	}

	var prog *ir.Program
	if *workloadName == "" && len(flag.Args()) > 1 {
		// Multi-file module build: every argument is a module named
		// after its base name, resolved via #include "name".
		files, err := readModuleFiles(flag.Args())
		if err != nil {
			fatal(err)
		}
		if *dumpSrc {
			flat, err := module.Flatten(files)
			if err != nil {
				fatal(err)
			}
			fmt.Print(flat)
			return
		}
		res, err := module.Build(files, module.Options{Stats: sc, Parallel: bench.DefaultParallelism()})
		if err != nil {
			fatal(err)
		}
		prog = res.Prog
	} else {
		src, file, err := inputSource(*workloadName, flag.Args())
		if err != nil {
			fatal(err)
		}
		if *dumpSrc {
			fmt.Print(src)
			return
		}
		prog, err = pipeline.Compile(file, src, sc)
		if err != nil {
			fatal(err)
		}
	}
	level, err := parseLevel(*levelName)
	if err != nil {
		fatal(err)
	}
	if err := pipeline.ApplyLevel(prog, level, sc); err != nil {
		fatal(err)
	}
	if *dumpIR {
		fmt.Print(ir.Print(prog))
		return
	}
	if *compare {
		compareConfigs(prog, sc)
		return
	}
	cfg, err := parseConfig(*configName)
	if err != nil {
		fatal(err)
	}
	an, err := usher.NewSessionObserved(prog, sc).Analyze(cfg)
	if err != nil {
		fatal(err)
	}
	st := an.StaticStats()
	fmt.Printf("%s: %d static shadow propagations, %d static checks", cfg, st.Props, st.Checks)
	if an.MFCsSimplified > 0 || an.Redirected > 0 {
		fmt.Printf(" (Opt I simplified %d MFCs, Opt II redirected %d nodes)", an.MFCsSimplified, an.Redirected)
	}
	fmt.Println()
	if *noRun {
		return
	}
	res, err := an.Run(usher.RunOptions{})
	if err != nil {
		reportRun(res, cfg)
		fatal(err)
	}
	reportRun(res, cfg)
}

// readModuleFiles loads each path as one module whose name is the base
// name with the extension stripped ("src/lib_a.c" -> "lib_a"), the name
// other modules use in #include directives.
func readModuleFiles(paths []string) ([]module.File, error) {
	files := make([]module.File, len(paths))
	for i, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		base := filepath.Base(p)
		files[i] = module.File{
			Name:   strings.TrimSuffix(base, filepath.Ext(base)),
			Source: string(data),
		}
	}
	return files, nil
}

func inputSource(workloadName string, args []string) (src, file string, err error) {
	if workloadName != "" {
		p, ok := workload.ByName(workloadName)
		if !ok {
			return "", "", fmt.Errorf("unknown workload %q", workloadName)
		}
		return workload.Generate(p), p.Name + ".c", nil
	}
	if len(args) != 1 {
		return "", "", fmt.Errorf("usage: usherc [flags] file.c [more.c ...] (or -workload name)")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return "", "", err
	}
	return string(data), args[0], nil
}

func parseConfig(name string) (usher.Config, error) {
	switch strings.ToLower(name) {
	case "msan", "full":
		return usher.ConfigMSan, nil
	case "tl":
		return usher.ConfigUsherTL, nil
	case "tlat", "tl+at":
		return usher.ConfigUsherTLAT, nil
	case "opti":
		return usher.ConfigUsherOptI, nil
	case "usher":
		return usher.ConfigUsherFull, nil
	case "optiii", "opt3", "usher3":
		return usher.ConfigUsherOptIII, nil
	}
	return 0, fmt.Errorf("unknown config %q (want msan, tl, tlat, opti, usher or optiii)", name)
}

func parseLevel(name string) (passes.Level, error) {
	switch strings.ToUpper(name) {
	case "O0":
		return passes.O0, nil
	case "O0+IM", "O0IM":
		return passes.O0IM, nil
	case "O1":
		return passes.O1, nil
	case "O2":
		return passes.O2, nil
	}
	return 0, fmt.Errorf("unknown level %q (want O0, O0+IM, O1 or O2)", name)
}

func reportRun(res *interp.Result, cfg usher.Config) {
	if res == nil {
		return
	}
	for _, v := range res.Out {
		fmt.Printf("output: %d\n", v)
	}
	fmt.Printf("exit: %s, %d native ops, %d shadow propagations, %d checks (overhead %.0f%%)\n",
		res.Exit, res.Steps, res.ShadowProps, res.ShadowChecks, bench.Overhead(res))
	if len(res.ShadowWarnings) == 0 {
		fmt.Printf("%s: no uses of undefined values detected\n", cfg)
		return
	}
	fmt.Printf("%s: %d uses of undefined values:\n", cfg, len(res.ShadowWarnings))
	for _, w := range res.ShadowWarnings {
		fmt.Printf("  %s\n", w)
	}
}

func compareConfigs(prog *ir.Program, sc *stats.Collector) {
	native, err := usher.RunNative(prog, usher.RunOptions{})
	if err != nil {
		fatal(err)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tstatic-props\tstatic-checks\tdyn-props\tdyn-checks\toverhead%\twarnings")
	s := usher.NewSessionObserved(prog, sc)
	for _, cfg := range usher.Configs {
		an, err := s.Analyze(cfg)
		if err != nil {
			fatal(err)
		}
		st := an.StaticStats()
		res, err := an.Run(usher.RunOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.0f\t%d\n",
			cfg, st.Props, st.Checks, res.ShadowProps, res.ShadowChecks,
			bench.Overhead(res), len(res.ShadowWarnings))
	}
	fmt.Fprintf(tw, "native\t-\t-\t-\t-\t0\t%d (oracle)\n", len(native.OracleWarnings))
	tw.Flush()
}

// fatal renders err on stderr and exits non-zero. Structured diagnostics
// (see internal/diag) are printed one per line in source order.
func fatal(err error) {
	if ds := diag.All(err); len(ds) > 0 {
		for _, d := range ds {
			fmt.Fprintln(os.Stderr, "usherc:", d)
		}
	} else {
		fmt.Fprintln(os.Stderr, "usherc:", err)
	}
	os.Exit(1)
}
