// Bugdetect: an interprocedural use of an undefined value flowing through
// heap memory and a function pointer, detected by every configuration —
// demonstrating the soundness of guided instrumentation (no bug that full
// instrumentation catches is missed).
package main

import (
	"fmt"
	"log"

	"github.com/valueflow/usher"
)

const src = `
struct Packet { int header; int len; int payload; };

struct Packet *packet_new(int header) {
  struct Packet *p = malloc(sizeof(struct Packet));
  p->header = header;
  // BUG: len is only set for large headers; payload is never set.
  if (header > 100) { p->len = header - 100; }
  return p;
}

int checksum(struct Packet *p) {
  // Uses p->len, which may be undefined.
  return p->header * 31 + p->len;
}

int process(int (*fn)(struct Packet*), struct Packet *p) {
  return fn(p);
}

int main() {
  struct Packet *small = packet_new(7);
  int c = process(checksum, small);   // undefined len flows into c
  if (c > 0) { print(1); } else { print(0); }
  free(small);
  return 0;
}
`

func main() {
	prog, err := usher.Compile("packet.c", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running the packet checksum under every configuration:")
	fmt.Println()
	for _, cfg := range usher.Configs {
		an := usher.MustAnalyze(prog, cfg)
		res, err := an.Run(usher.RunOptions{})
		if err != nil {
			log.Fatalf("%v: %v", cfg, err)
		}
		fmt.Printf("%-11s %d warnings, %d shadow props, %d checks\n",
			cfg, len(res.ShadowWarnings), res.ShadowProps, res.ShadowChecks)
		for _, w := range res.ShadowWarnings {
			fmt.Printf("            %s\n", w)
		}
	}
	fmt.Println()
	fmt.Println("every configuration reports the undefined packet length;")
	fmt.Println("Usher does it with a fraction of the instrumentation.")
}
