// Overheadstudy: sweep the five instrumentation configurations over one
// generated SPEC-like benchmark and show where the savings come from —
// the per-phase breakdown of Figure 10/11 on a single workload.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/workload"
)

func main() {
	name := "mcf"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	p, ok := workload.ByName(name)
	if !ok {
		log.Fatalf("unknown workload %q (try gzip, mcf, parser, ...)", name)
	}
	c, err := bench.Prepare(p, passes.O0IM)
	if err != nil {
		log.Fatal(err)
	}
	native, err := usher.RunNative(c.Prog, usher.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s (%s): %d native ops, output %v\n\n",
		p.Name, p.Spec, native.Steps, native.Out)

	fmt.Println("config       dyn-props   dyn-checks  overhead%  saved-vs-MSan")
	var msanWork float64
	for _, cfg := range usher.Configs {
		an := usher.MustAnalyze(c.Prog, cfg)
		res, err := an.Run(usher.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		work := bench.PropCost*float64(res.ShadowProps) + bench.CheckCost*float64(res.ShadowChecks)
		if cfg == usher.ConfigMSan {
			msanWork = work
		}
		saved := 0.0
		if msanWork > 0 {
			saved = 100 * (1 - work/msanWork)
		}
		fmt.Printf("%-12s %-11d %-11d %-10.0f %.1f%%\n",
			cfg, res.ShadowProps, res.ShadowChecks, bench.Overhead(res), saved)
	}

	// Where the static savings come from.
	full := usher.MustAnalyze(c.Prog, usher.ConfigUsherFull)
	fmt.Printf("\nUsher static detail: %d MFCs simplified by Opt I, %d nodes redirected by Opt II\n",
		full.MFCsSimplified, full.Redirected)
}
