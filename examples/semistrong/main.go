// Semistrong: the paper's Figure 6 in action. A heap cell is allocated
// and immediately initialized inside a function called many times. A weak
// update can never kill the allocation's "undefined" state, so the loads
// stay instrumented forever; the semi-strong update reroutes the value
// flow around it and proves the loads defined.
package main

import (
	"fmt"
	"log"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/instrument"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/vfg"
)

const src = `
int consume() {
  int *q = malloc(1);   // alloc_F: one uninitialized heap cell
  *q = 42;              // the store q's allocation dominates
  int v = *q;           // is v provably defined?
  free(q);
  return v;
}

int main() {
  int s = 0;
  for (int i = 0; i < 1000; i++) { s += consume(); }
  print(s);
  return 0;
}
`

func main() {
	prog, err := usher.Compile("fig6.c", src)
	if err != nil {
		log.Fatal(err)
	}
	pa := pointer.Analyze(prog)
	mem := memssa.Build(prog, pa)

	for _, variant := range []struct {
		name string
		opts vfg.Options
	}{
		{"with semi-strong updates (the paper's rule)", vfg.Options{}},
		{"ablation: semi-strong updates disabled", vfg.Options{NoSemiStrong: true}},
	} {
		g := vfg.Build(prog, pa, mem, variant.opts)
		gm := vfg.Resolve(g)
		res := instrument.Guided("demo", g, gm, instrument.GuidedOptions{OptI: true, OptII: true})
		st := res.Plan.StaticStats()
		fmt.Printf("%s:\n", variant.name)
		fmt.Printf("  semi-strong cuts: %d\n", g.SemiStrongCuts)
		fmt.Printf("  static shadow propagations: %d, checks: %d\n\n", st.Props, st.Checks)
	}
	fmt.Println("the weak update keeps the alloc_F reachable, so the hot loop stays")
	fmt.Println("instrumented; the semi-strong update removes all of it.")
}
