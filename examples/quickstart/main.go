// Quickstart: compile a MiniC program, run the Usher analysis, execute it
// under guided instrumentation, and compare the instrumentation cost
// against MSan-style full instrumentation.
package main

import (
	"fmt"
	"log"

	"github.com/valueflow/usher"
)

const src = `
// A small image-blur-like kernel: a heap row buffer is filled and
// consumed; one branch depends on a value the analysis must track.
int blur_row(int *row, int n) {
  int acc = 0;
  for (int i = 1; i < n - 1; i++) {
    int v = (row[i - 1] + row[i] + row[i + 1]) / 3;
    if (v > 128) { acc += v; }
  }
  return acc;
}

int main() {
  int n = 64;
  int *row = malloc(n);
  for (int i = 0; i < n; i++) { row[i] = (i * 37) % 256; }
  int sharp = blur_row(row, n);
  print(sharp);
  free(row);
  return 0;
}
`

func main() {
	prog, err := usher.Compile("quickstart.c", src)
	if err != nil {
		log.Fatal(err)
	}

	// Full instrumentation: the MSan baseline.
	msan := usher.MustAnalyze(prog, usher.ConfigMSan)
	msanRes, err := msan.Run(usher.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Guided instrumentation: the paper's Usher (value-flow analysis +
	// Opt I + Opt II).
	ush := usher.MustAnalyze(prog, usher.ConfigUsherFull)
	ushRes, err := ush.Run(usher.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("program output: %v (native ops: %d)\n\n", ushRes.Out, ushRes.Steps)

	fmt.Println("                     MSan       Usher")
	fmt.Printf("static propagations  %-10d %d\n", msan.StaticStats().Props, ush.StaticStats().Props)
	fmt.Printf("static checks        %-10d %d\n", msan.StaticStats().Checks, ush.StaticStats().Checks)
	fmt.Printf("dynamic propagations %-10d %d\n", msanRes.ShadowProps, ushRes.ShadowProps)
	fmt.Printf("dynamic checks       %-10d %d\n", msanRes.ShadowChecks, ushRes.ShadowChecks)
	fmt.Printf("warnings             %-10d %d\n", len(msanRes.ShadowWarnings), len(ushRes.ShadowWarnings))

	if len(ushRes.ShadowWarnings) == 0 {
		fmt.Println("\nno uses of undefined values — and Usher proved most tracking unnecessary")
	}
}
