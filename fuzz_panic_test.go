package usher_test

import (
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/randprog"
)

// pipeline pushes src through the whole public surface — compile,
// analyze (both VFG variants), instrumented and native execution — and
// asserts that malformed input surfaces as errors, never panics. The
// fuzz targets below are thin wrappers; any panic fails the fuzzer.
func pipeline(t *testing.T, src string) {
	t.Helper()
	prog, err := usher.Compile("fuzz.c", src)
	if err != nil {
		if prog != nil {
			t.Fatalf("Compile returned both a program and an error: %v", err)
		}
		return
	}
	opts := usher.RunOptions{MaxSteps: 50_000}
	s := usher.NewSession(prog)
	for _, cfg := range []usher.Config{usher.ConfigUsherTL, usher.ConfigUsherFull} {
		an, err := s.Analyze(cfg)
		if err != nil {
			t.Fatalf("%v: analysis of compiled program failed: %v", cfg, err)
		}
		if _, err := an.Run(opts); err != nil {
			// Runtime traps (invalid pointers, fuel exhaustion) are legal
			// outcomes; escaping panics are not, and the fuzzer catches
			// those by itself.
			continue
		}
	}
	usher.RunNative(prog, opts)
}

// FuzzCompile feeds arbitrary bytes through lex→parse→type→lower→
// analyze→run, asserting no panic escapes the public API:
//
//	go test -fuzz=FuzzCompile -fuzztime=30s
//
// The checked-in corpus under testdata/fuzz/FuzzCompile holds the
// regression inputs for every frontend bug the fuzzer has surfaced.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"int main(void) { return 0; }",
		"int main(void) { int x; print(x); return 0; }",
		"struct S { int a; int b; }; int main(void) { struct S s; s.a = 1; return s.b; }",
		"int f(int a) { return a + 1; } int main(void) { int (*p)(int); p = f; return p(2); }",
		"int main(void) { /* unterminated",
		"int main(void) { 3 = 4; return 0; }",
		"int main(void) { return frobnicate(1); }",
		"int main(void) { print(1, 2); return 0; }",
		"int main(void) { int x = 1 $ 2; return x; }",
		// Widened constructs: strings, structs by value, varargs, intrinsics.
		`char g[8] = "hello"; int main(void) { char c[4] = "abc"; print(c[0] + g[1]); return 0; }`,
		`int main(void) { char c[2] = "way too long for the array"; return c[0]; }`,
		`struct S { int a; int b; }; struct S mk(int a) { struct S s; s.a = a; return s; } int main(void) { struct S t = mk(1); struct S u = t; print(u.b); return 0; }`,
		`int vs(int n, ...) { int t = 0; for (int i = 0; i < n; i++) { t += va_arg(i); } return t; } int main(void) { print(vs(1)); return vs(2, 1, 2); }`,
		`int main(void) { return va_arg(0); }`,
		`int main(void) { char b[8]; memset(b, 65, 8); char d[8]; memcpy(d, b, 0 - 1); return d[0]; }`,
		`int main(void) { int *p = malloc(8); memmove(p, p, 8); memset(p); return 0; }`,
		`char s[4] = 7; int main(void) { return s[0]; }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		pipeline(t, src)
	})
}

// FuzzMutatedRandprog generates a valid random program and flips one
// byte before feeding it to the pipeline, exploring near-valid inputs
// that plain byte fuzzing rarely reaches:
//
//	go test -fuzz=FuzzMutatedRandprog -fuzztime=30s
func FuzzMutatedRandprog(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint(seed*37), byte('{'))
	}
	f.Fuzz(func(t *testing.T, seed int64, off uint, b byte) {
		src := randprog.Generate(seed, randprog.DefaultOptions)
		if len(src) > 0 {
			mutated := []byte(src)
			mutated[int(off)%len(mutated)] = b
			src = string(mutated)
		}
		pipeline(t, src)
	})
}
