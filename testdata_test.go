package usher_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/valueflow/usher"
)

// TestTestdataPrograms compiles and runs every sample program under every
// configuration: programs named *_bug.c must be flagged by all configs;
// all others must run clean with agreeing outputs.
func TestTestdataPrograms(t *testing.T) {
	files, err := filepath.Glob("testdata/*.c")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := usher.Compile(file, string(data))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			buggy := strings.Contains(file, "_bug")
			native, err := usher.RunNative(prog, usher.RunOptions{})
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			if buggy != (len(native.OracleWarnings) > 0) {
				t.Fatalf("oracle warnings = %v, buggy = %v", native.OracleWarnings, buggy)
			}
			for _, cfg := range usher.Configs {
				an := usher.MustAnalyze(prog, cfg)
				res, err := an.Run(usher.RunOptions{})
				if err != nil {
					t.Fatalf("[%v] run: %v", cfg, err)
				}
				if len(res.ShadowViolations) != 0 {
					t.Errorf("[%v] violations: %v", cfg, res.ShadowViolations)
				}
				if buggy && len(res.ShadowWarnings) == 0 {
					t.Errorf("[%v] missed the bug", cfg)
				}
				if !buggy && len(res.ShadowWarnings) != 0 {
					t.Errorf("[%v] false positives: %v", cfg, res.ShadowWarnings)
				}
				if res.Exit.Int != native.Exit.Int {
					t.Errorf("[%v] exit %d != native %d", cfg, res.Exit.Int, native.Exit.Int)
				}
			}
		})
	}
}
