package usher_test

import (
	"fmt"
	"log"

	"github.com/valueflow/usher"
)

// ExampleAnalyze compiles a buggy program, analyzes it with the full
// Usher configuration, and reports the detected use of an undefined
// value together with the instrumentation savings.
func ExampleAnalyze() {
	src := `
int main() {
  int *p = malloc(2);
  p[0] = 41;
  int v = p[0] + p[1];   // p[1] was never written
  if (v > 0) { print(v); }
  return 0;
}`
	prog, err := usher.Compile("bug.c", src)
	if err != nil {
		log.Fatal(err)
	}
	msan := usher.MustAnalyze(prog, usher.ConfigMSan)
	ush := usher.MustAnalyze(prog, usher.ConfigUsherFull)

	msanRes, _ := msan.Run(usher.RunOptions{})
	ushRes, _ := ush.Run(usher.RunOptions{})

	fmt.Printf("MSan:  %d warnings with %d static propagations\n",
		len(msanRes.ShadowWarnings), msan.StaticStats().Props)
	fmt.Printf("Usher: %d warnings with %d static propagations\n",
		len(ushRes.ShadowWarnings), ush.StaticStats().Props)
	// Output:
	// MSan:  2 warnings with 9 static propagations
	// Usher: 2 warnings with 6 static propagations
}

// ExampleRunNative executes a program without instrumentation; the
// interpreter's ground-truth oracle still reports undefined-value uses.
func ExampleRunNative() {
	prog := usher.MustCompile("clean.c", `
int main() {
  int s = 0;
  for (int i = 1; i <= 4; i++) { s += i * i; }
  print(s);
  return 0;
}`)
	res, err := usher.RunNative(prog, usher.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Out[0], len(res.OracleWarnings))
	// Output: 30 0
}
