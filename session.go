package usher

import (
	"sync"

	"github.com/valueflow/usher/internal/diag"
	"github.com/valueflow/usher/internal/instrument"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/vfg"
)

// Session caches the config-invariant analysis artifacts of one compiled
// program so that analyzing it under several configurations — the paper
// evaluates five or six per program — pays for the pointer analysis,
// memory SSA, value-flow graph and definedness resolution exactly once.
//
// Artifact sharing is sound because every shared structure is immutable
// after construction: the pointer Result freezes its union-find after
// solving, the VFG is sealed (node lookups never materialize nodes), and
// configuration-specific work (Opt I/II/III, plan emission) either reads
// the shared graph or derives fresh data from it (Opt II re-resolves Γ
// through an edge filter without touching the graph). A Session is safe
// for concurrent Analyze calls from multiple goroutines.
//
// A panic inside any analysis stage — an internal invariant violation,
// typically provoked by IR the frontend should have rejected — is
// captured as an error rather than crashing the process. The error is
// cached alongside the artifact: every later call for the same artifact
// reports the same error.
//
// Two VFG variants exist: the full graph (address-taken variables
// modelled), shared by MSan, UsherTL+AT, UsherOptI, Usher and
// Usher+OptIII, and the top-level-only graph used by UsherTL. Each is
// built lazily on first demand.
type Session struct {
	Prog *ir.Program

	baseOnce sync.Once
	pa       *pointer.Result
	mem      *memssa.Info
	baseErr  error

	fullOnce  sync.Once
	fullG     *vfg.Graph
	fullGamma *vfg.Gamma
	fullErr   error

	tlOnce  sync.Once
	tlG     *vfg.Graph
	tlGamma *vfg.Gamma
	tlErr   error
}

// NewSession prepares a shared-analysis session for prog. All artifacts
// are computed lazily; a session that is never analyzed costs nothing.
func NewSession(prog *ir.Program) *Session {
	return &Session{Prog: prog}
}

// Base returns the configuration-invariant pointer analysis and memory
// SSA, computing them on first use.
func (s *Session) Base() (*pointer.Result, *memssa.Info, error) {
	s.baseOnce.Do(func() {
		defer diag.Guard(diag.PhaseAnalyze, &s.baseErr)
		s.pa = pointer.Analyze(s.Prog)
		s.mem = memssa.Build(s.Prog, s.pa)
	})
	if s.baseErr != nil {
		return nil, nil, s.baseErr
	}
	return s.pa, s.mem, nil
}

// Graph returns the shared value-flow graph and its resolved Γ for the
// given variant (topLevelOnly selects the Usher_TL graph).
func (s *Session) Graph(topLevelOnly bool) (*vfg.Graph, *vfg.Gamma, error) {
	pa, mem, err := s.Base()
	if err != nil {
		return nil, nil, err
	}
	if topLevelOnly {
		s.tlOnce.Do(func() {
			defer diag.Guard(diag.PhaseAnalyze, &s.tlErr)
			s.tlG = vfg.Build(s.Prog, pa, mem, vfg.Options{TopLevelOnly: true})
			s.tlGamma = vfg.Resolve(s.tlG)
		})
		if s.tlErr != nil {
			return nil, nil, s.tlErr
		}
		return s.tlG, s.tlGamma, nil
	}
	s.fullOnce.Do(func() {
		defer diag.Guard(diag.PhaseAnalyze, &s.fullErr)
		s.fullG = vfg.Build(s.Prog, pa, mem, vfg.Options{})
		s.fullGamma = vfg.Resolve(s.fullG)
	})
	if s.fullErr != nil {
		return nil, nil, s.fullErr
	}
	return s.fullG, s.fullGamma, nil
}

// Analyze runs the static pipeline for one configuration, reusing every
// config-invariant artifact the session has already computed. The result
// is identical to a standalone Analyze call on the same program.
func (s *Session) Analyze(cfg Config) (_ *Analysis, err error) {
	defer diag.Guard(diag.PhaseAnalyze, &err)
	a := &Analysis{Config: cfg, Prog: s.Prog}
	a.Pointer, a.Mem, err = s.Base()
	if err != nil {
		return nil, err
	}
	a.Graph, a.Gamma, err = s.Graph(cfg == ConfigUsherTL)
	if err != nil {
		return nil, err
	}

	if cfg == ConfigMSan {
		a.Plan = instrument.Full(s.Prog)
		return a, nil
	}

	gopts := instrument.GuidedOptions{
		OptI:       cfg >= ConfigUsherOptI,
		OptII:      cfg >= ConfigUsherFull,
		OptIII:     cfg >= ConfigUsherOptIII,
		MemoryFull: cfg == ConfigUsherTL,
	}
	res := instrument.Guided(cfg.String(), a.Graph, a.Gamma, gopts)
	a.Plan = res.Plan
	a.Gamma = res.Gamma
	a.MFCsSimplified = res.MFCsSimplified
	a.Redirected = res.Redirected
	a.ChecksElided = res.ChecksElided
	return a, nil
}

// MustAnalyze is Analyze for programs known to analyze cleanly; it panics
// on error (a caller contract violation, see package diag).
func (s *Session) MustAnalyze(cfg Config) *Analysis {
	a, err := s.Analyze(cfg)
	diag.MustNil("analyze "+cfg.String(), err)
	return a
}

// AnalyzeAll analyzes every configuration in cfgs, reusing the shared
// artifacts, and returns the results in the same order. The first
// configuration that fails aborts the sweep.
func (s *Session) AnalyzeAll(cfgs []Config) ([]*Analysis, error) {
	out := make([]*Analysis, len(cfgs))
	for i, cfg := range cfgs {
		a, err := s.Analyze(cfg)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}
