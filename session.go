package usher

import (
	"time"

	"github.com/valueflow/usher/internal/diag"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/pipeline"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/snapshot"
	"github.com/valueflow/usher/internal/stats"
	"github.com/valueflow/usher/internal/vfg"
	"github.com/valueflow/usher/internal/vfgsum"
)

// Session caches the config-invariant analysis artifacts of one compiled
// program so that analyzing it under several configurations — the paper
// evaluates five or six per program — pays for the pointer analysis,
// memory SSA, value-flow graph and definedness resolution exactly once.
//
// Session is a thin facade over the pipeline artifact store
// (internal/pipeline): every stage is a registered pass whose artifact is
// computed exactly once per session, shared read-only, with errors (and
// captured panics) cached alongside — every later call for the same
// artifact reports the same error. A Session is safe for concurrent
// Analyze calls from multiple goroutines; see internal/pipeline for the
// immutability argument (frozen union-find, sealed graphs — the latter
// enforced at the store boundary).
//
// Two VFG variants exist: the full graph (address-taken variables
// modelled), shared by MSan, UsherTL+AT, UsherOptI, Usher and
// Usher+OptIII, and the top-level-only graph used by UsherTL. Each is
// built lazily on first demand.
type Session struct {
	Prog  *ir.Program
	store *pipeline.Store
}

// NewSession prepares a shared-analysis session for prog. All artifacts
// are computed lazily; a session that is never analyzed costs nothing.
func NewSession(prog *ir.Program) *Session {
	return NewSessionObserved(prog, nil)
}

// NewSessionObserved is NewSession with per-pass observability: every
// pipeline pass run is timed and counted into sc (nil records nothing,
// making it identical to NewSession).
func NewSessionObserved(prog *ir.Program, sc *stats.Collector) *Session {
	return &Session{Prog: prog, store: pipeline.NewStore(prog, sc)}
}

// Base returns the configuration-invariant pointer analysis and memory
// SSA, computing them on first use.
func (s *Session) Base() (*pointer.Result, *memssa.Info, error) {
	pa, err := s.store.Pointer()
	if err != nil {
		return nil, nil, err
	}
	mem, err := s.store.MemSSA()
	if err != nil {
		return nil, nil, err
	}
	return pa, mem, nil
}

// Graph returns the shared value-flow graph and its resolved Γ for the
// given variant (topLevelOnly selects the Usher_TL graph).
func (s *Session) Graph(topLevelOnly bool) (*vfg.Graph, *vfg.Gamma, error) {
	g, err := s.store.Graph(topLevelOnly)
	if err != nil {
		return nil, nil, err
	}
	gm, err := s.store.Gamma(topLevelOnly)
	if err != nil {
		return nil, nil, err
	}
	return g, gm, nil
}

// Analyze runs the static pipeline for one configuration, reusing every
// config-invariant artifact the session has already computed. The result
// is identical to a standalone Analyze call on the same program. The
// dispatch is driven by the config-capabilities table (see configTable in
// usher.go); a Config outside the table is an error.
func (s *Session) Analyze(cfg Config) (_ *Analysis, err error) {
	defer diag.Guard(diag.PhaseAnalyze, &err)
	spec, err := cfg.spec()
	if err != nil {
		return nil, err
	}
	a := &Analysis{Config: cfg, Prog: s.Prog}
	if pr, ok := s.store.PreloadedPlan(spec.plan.Name); ok {
		// Snapshot warm start: the preloaded plan answers the
		// configuration without demanding any analysis pass — Run
		// consumes only the plan. Graph, Mem and Gamma stay nil (the
		// snapshot does not carry them); Pointer is the imported result.
		a.Plan = pr.Plan
		a.MFCsSimplified = pr.MFCsSimplified
		a.Redirected = pr.Redirected
		a.ChecksElided = pr.ChecksElided
		if pa, ok := s.store.PreloadedPointer(); ok {
			a.Pointer = pa
		}
		return a, nil
	}
	a.Pointer, a.Mem, err = s.Base()
	if err != nil {
		return nil, err
	}
	a.Graph, a.Gamma, err = s.Graph(spec.plan.TopLevelOnly)
	if err != nil {
		return nil, err
	}
	pr, err := s.store.Plan(spec.plan)
	if err != nil {
		return nil, err
	}
	a.Plan = pr.Plan
	a.Gamma = pr.Gamma
	a.MFCsSimplified = pr.MFCsSimplified
	a.Redirected = pr.Redirected
	a.ChecksElided = pr.ChecksElided
	return a, nil
}

// MustAnalyze is Analyze for programs known to analyze cleanly; it panics
// on error (a caller contract violation, see package diag).
func (s *Session) MustAnalyze(cfg Config) *Analysis {
	a, err := s.Analyze(cfg)
	diag.MustNil("analyze "+cfg.String(), err)
	return a
}

// WarmStart seeds the session from a snapshot of the same program: the
// serialized pointer result is imported and every stored
// instrumentation plan is preloaded into the artifact store, so Analyze
// skips the pointer solve, memory SSA, VFG construction and Γ
// resolution for every configuration the snapshot carries. Artifacts
// the session has already computed keep precedence (a pass that ran
// wins over the snapshot). The caller is responsible for matching the
// snapshot to the program — snapshot.Load/Read verify the content
// fingerprint and refuse stale files — and a damaged snapshot surfaces
// here as an import error, letting callers fall back to a cold solve.
// Returns the number of artifacts seeded.
//
// WarmStart is safe to race with Analyze on the same session: the
// pointer import mutates the IR (object collapsing), so it runs inside
// the store's pointer slot — either the import claims the slot first
// and every concurrent Analyze consumes the imported result, or a cold
// solve got there first and the import is skipped entirely. Both orders
// produce plans with identical fingerprints.
func (s *Session) WarmStart(snap *snapshot.Snapshot) (int, error) {
	start := time.Now()
	n := 0
	seeded, err := s.store.PreloadFunc("pointer", "", func() (any, error) {
		return pointer.Import(s.Prog, snap.Pointer)
	})
	if err != nil {
		return 0, err
	}
	if seeded {
		n++
	}
	plans := 0
	for _, pe := range snap.Plans {
		pr := &pipeline.PlanResult{
			Plan:           pe.Plan,
			MFCsSimplified: pe.MFCsSimplified,
			Redirected:     pe.Redirected,
			ChecksElided:   pe.ChecksElided,
			Demanded:       pe.Demanded,
		}
		if s.store.Preload("plan", pe.Name, pr) {
			n++
			plans++
		}
	}
	// Resolved Γs (VSUM sections) are staged rather than preloaded: a Γ
	// indexes the VFG's node numbering, so the store consumes the seed
	// when the graph of that variant exists, after re-checking the node
	// count. A demand that never touches the variant never pays for it.
	gammas := 0
	for _, ge := range snap.Gammas {
		s.store.SeedGamma(ge.Variant, ge.Nodes, ge.Bottom)
		n++
		gammas++
	}
	s.store.Observe("snapshot", "", time.Since(start), map[string]int64{
		"plans_loaded":  int64(plans),
		"gammas_loaded": int64(gammas),
		"pts_regs":      int64(len(snap.Pointer.Regs)),
		"call_edges":    int64(len(snap.Pointer.Calls)),
	})
	return n, nil
}

// Snapshot assembles the persistable view of the session's solved
// state: the pointer export plus every instrumentation plan computed so
// far (call it after the analyses of interest have run). Only
// cold-solved sessions can snapshot — a warm-started session's pointer
// result was itself imported and has no solver state to export.
func (s *Session) Snapshot() (*snapshot.Snapshot, error) {
	pa, err := s.store.Pointer()
	if err != nil {
		return nil, err
	}
	ex, err := pa.Export(s.Prog)
	if err != nil {
		return nil, err
	}
	snap := &snapshot.Snapshot{Pointer: ex}
	for _, variant := range []string{snapshot.GammaFull, snapshot.GammaTL} {
		gm, ok := s.store.CachedGamma(variant)
		if !ok {
			continue
		}
		bits := gm.BottomBits()
		if bits == nil {
			continue // merged-equivalence Γ has no per-node bit vector
		}
		snap.Gammas = append(snap.Gammas, snapshot.GammaEntry{
			Variant: variant,
			Nodes:   gm.NodeCount(),
			Bottom:  bits,
		})
	}
	for _, name := range s.store.PlanNames() {
		pr, ok := s.store.CachedPlan(name)
		if !ok {
			continue
		}
		snap.Plans = append(snap.Plans, snapshot.PlanEntry{
			Name:           name,
			Plan:           pr.Plan,
			MFCsSimplified: pr.MFCsSimplified,
			Redirected:     pr.Redirected,
			ChecksElided:   pr.ChecksElided,
			Demanded:       pr.Demanded,
		})
	}
	return snap, nil
}

// PrewarmGraphs materializes both VFG variants (and their pointer /
// memory-SSA prerequisites) without resolving Γ. Benchmarks use it to
// time resolution in isolation; production callers can use it to move
// graph construction off the first analysis request.
func (s *Session) PrewarmGraphs() error {
	if _, err := s.store.Graph(false); err != nil {
		return err
	}
	_, err := s.store.Graph(true)
	return err
}

// PrewarmResolve materializes every resolution artifact — Γ over both
// graph variants plus the Opt II re-resolution — concurrently on up to
// parallel workers (0 means one per CPU). Results and recorded counters
// are bit-identical to the lazy sequential order at any worker count;
// only the wall-clock moves. Configurations analyzed afterwards find
// resolution already done.
func (s *Session) PrewarmResolve(parallel int) error {
	return s.store.PrewarmResolve(parallel)
}

// Summaries returns the Opt IV condensation artifact (supernode graph
// plus definedness summaries) for the requested graph variant,
// computing it on first use regardless of whether summary resolution is
// enabled process-wide.
func (s *Session) Summaries(topLevelOnly bool) (*vfgsum.Summary, error) {
	return s.store.Summaries(topLevelOnly)
}

// EvictErrors discards every cached pass failure in the session's
// artifact store so the next Analyze retries those passes. Successful
// artifacts are untouched. Long-lived holders (the usherd daemon) call
// it after serving an error: the cached-error contract still holds for
// concurrent requests to one failure, but a transient fault no longer
// poisons the session forever. Returns the number of evicted failures.
func (s *Session) EvictErrors() int { return s.store.EvictErrors() }

// AnalyzeAll analyzes every configuration in cfgs, reusing the shared
// artifacts, and returns the results in the same order. The first
// configuration that fails aborts the sweep.
func (s *Session) AnalyzeAll(cfgs []Config) ([]*Analysis, error) {
	out := make([]*Analysis, len(cfgs))
	for i, cfg := range cfgs {
		a, err := s.Analyze(cfg)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}
